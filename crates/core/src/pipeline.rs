//! Composable pass-pipeline architecture for the enablement flow.
//!
//! The paper's flow (map MIG → restrict fan-out → insert buffers →
//! verify balance) used to be a hardcoded 4-call sequence; this module
//! turns each stage into a [`Pass`] over a shared [`FlowContext`], so a
//! flow configuration is *data*: an ordered list of passes assembled by
//! [`FlowPipelineBuilder`]. New scenarios (retimed or weighted
//! insertion, FOG-k sweeps, verification-only runs) become one-line
//! pipeline edits instead of hand-rolled drivers.
//!
//! Every pass execution is instrumented: the pipeline records wall
//! time, component-count delta and depth change per pass in a
//! [`PassStats`] trace, which the bench harness surfaces per benchmark.
//!
//! The builder enforces the paper's structural constraints
//! (§IV: fan-out restriction must precede buffer insertion; mapping
//! must come first; verification last) at [`FlowPipelineBuilder::build`]
//! time, returning a [`PipelineError`] instead of producing a pipeline
//! that would compute garbage.
//!
//! [`crate::run_flow`] remains as a thin compatibility wrapper that
//! assembles the default pipeline for a [`crate::FlowConfig`], and
//! [`crate::run_flow_batch`] evaluates many graphs concurrently.

use std::fmt;
use std::time::Instant;

use mig::Mig;
use rayon::prelude::*;

use std::sync::Arc;

use crate::balance::{BalanceError, BalanceReport};
use crate::buffer_insertion::BufferInsertion;
use crate::component::CompId;
use crate::cost::{CostModel, CostTable, PricedDelta};
use crate::fanout_restriction::FanoutRestriction;
use crate::flow::FlowResult;
use crate::netlist::{FanoutEdges, KindCounts, Netlist, StructuralCaches};
use crate::weighted::{DelayWeights, WeightedBalanceError, WeightedInsertion};

/// Why a pass (and therefore a pipeline run) failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PassError {
    /// Unit-delay balance verification failed.
    Balance(BalanceError),
    /// Weighted-delay balancing or verification failed.
    Weighted(WeightedBalanceError),
    /// A pass left the netlist structurally broken (e.g. a custom pass
    /// wired a combinational cycle) — caught at the pass boundary.
    Netlist(crate::netlist::NetlistError),
    /// The opt-in per-pass equivalence gate
    /// ([`FlowPipelineBuilder::gate_equivalence`]) caught a pass
    /// breaking functional equivalence with the source MIG; the
    /// counterexample names the offending pass.
    Equivalence(Box<crate::verify::differential::Counterexample>),
    /// The opt-in per-pass lint gate
    /// ([`FlowPipelineBuilder::gate_lints`]) found error-severity
    /// diagnostics; the failure names the offending pass and carries
    /// the full diagnostic set.
    Lint(Box<crate::lint::LintFailure>),
    /// A custom pass failed with a free-form message.
    Custom(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Balance(e) => write!(f, "{e}"),
            PassError::Weighted(e) => write!(f, "{e}"),
            PassError::Netlist(e) => write!(f, "{e}"),
            PassError::Equivalence(cex) => write!(f, "equivalence gate: {cex}"),
            PassError::Lint(failure) => write!(f, "{failure}"),
            PassError::Custom(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for PassError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PassError::Balance(e) => Some(e),
            PassError::Weighted(e) => Some(e),
            PassError::Netlist(e) => Some(e),
            PassError::Equivalence(_) | PassError::Lint(_) | PassError::Custom(_) => None,
        }
    }
}

impl From<BalanceError> for PassError {
    fn from(e: BalanceError) -> PassError {
        PassError::Balance(e)
    }
}

impl From<WeightedBalanceError> for PassError {
    fn from(e: WeightedBalanceError) -> PassError {
        PassError::Weighted(e)
    }
}

impl From<crate::netlist::NetlistError> for PassError {
    fn from(e: crate::netlist::NetlistError) -> PassError {
        PassError::Netlist(e)
    }
}

/// Coarse category of a pass, used by the builder's ordering checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassKind {
    /// Rewrites the working MIG before mapping (logic optimization;
    /// must precede the mapping pass).
    Rewrite,
    /// Maps the input MIG onto the physical netlist (must run first
    /// among the netlist passes).
    Map,
    /// Splits fan-out with FOG chains (must precede buffer insertion).
    FanoutRestriction,
    /// Inserts path-balancing buffers.
    BufferInsertion,
    /// Checks invariants without transforming (must come after all
    /// transforms).
    Verify,
    /// Anything else: analyses, dumps, custom transforms.
    Other,
}

/// The shared state a pipeline threads through its passes.
///
/// Passes read and mutate the working [`Netlist`] and deposit their
/// typed statistics in the dedicated slots; the pipeline itself fills
/// the instrumentation trace.
#[derive(Debug)]
pub struct FlowContext<'g> {
    graph: &'g Mig,
    working: Option<Mig>,
    netlist: Netlist,
    original: Option<Netlist>,
    cost: Option<CostTable>,
    caches: StructuralCaches,
    /// Fan-out restriction statistics (set by the fan-out pass).
    pub fanout: Option<FanoutRestriction>,
    /// Buffer insertion statistics (set by ASAP/retimed insertion).
    pub buffers: Option<BufferInsertion>,
    /// Weighted insertion statistics (set by weighted insertion).
    pub weighted: Option<WeightedInsertion>,
    /// Balance verification report (set by the verify pass).
    pub report: Option<BalanceReport>,
}

impl<'g> FlowContext<'g> {
    fn new(graph: &'g Mig, cost: Option<CostTable>) -> FlowContext<'g> {
        FlowContext {
            graph,
            working: None,
            netlist: Netlist::new("unmapped"),
            original: None,
            cost,
            caches: StructuralCaches::default(),
            fanout: None,
            buffers: None,
            weighted: None,
            report: None,
        }
    }

    /// The input MIG, as handed to the run — the reference every
    /// equivalence gate checks against, untouched by rewrite passes.
    pub fn graph(&self) -> &'g Mig {
        self.graph
    }

    /// The MIG the mapping pass consumes: the latest rewritten graph if
    /// any [`PassKind::Rewrite`] pass ran, otherwise the input MIG.
    pub fn working_graph(&self) -> &Mig {
        self.working.as_ref().unwrap_or(self.graph)
    }

    /// Installs an optimized MIG as the working graph (rewrite passes
    /// call this). The source graph stays available via
    /// [`FlowContext::graph`] so gates keep checking end-to-end.
    pub fn set_rewritten(&mut self, graph: Mig) {
        self.working = Some(graph);
    }

    /// The working netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access to the working netlist (transform passes).
    ///
    /// Invalidates the [`StructuralCaches`] — any structural view
    /// obtained earlier keeps describing the pre-mutation netlist.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        self.caches.invalidate();
        &mut self.netlist
    }

    /// The technology cost model this run prices against, if one was
    /// configured ([`FlowPipelineBuilder::with_cost_model`] or the grid
    /// driver). Cost-aware passes consult it; cost-blind passes ignore
    /// it.
    pub fn cost_model(&self) -> Option<&CostTable> {
        self.cost.as_ref()
    }

    /// Cached topological order of the working netlist.
    pub fn topo_order(&mut self) -> Arc<Vec<CompId>> {
        self.caches.topo_order(&self.netlist)
    }

    /// Cached ASAP levels of the working netlist.
    pub fn levels(&mut self) -> Arc<Vec<u32>> {
        self.caches.levels(&self.netlist)
    }

    /// Cached fan-out edge lists of the working netlist.
    pub fn fanout_edges(&mut self) -> Arc<FanoutEdges> {
        self.caches.fanout_edges(&self.netlist)
    }

    /// Cached fan-out counts of the working netlist.
    pub fn fanout_counts(&mut self) -> Arc<Vec<u32>> {
        self.caches.fanout_counts(&self.netlist)
    }

    /// Cached depth of the working netlist.
    pub fn depth(&mut self) -> u32 {
        self.caches.depth(&self.netlist)
    }

    /// Fallible [`FlowContext::depth`] — the variant the pipeline's
    /// pass-boundary instrumentation uses, so a custom pass that wires
    /// a combinational cycle fails its run instead of panicking.
    ///
    /// # Errors
    ///
    /// [`crate::NetlistError::CombinationalCycle`].
    pub fn try_depth(&mut self) -> Result<u32, crate::netlist::NetlistError> {
        self.caches.try_depth(&self.netlist)
    }

    /// Installs the freshly mapped netlist and snapshots it as the
    /// pre-transformation original (mapping passes call this).
    pub fn set_mapped(&mut self, netlist: Netlist) {
        self.caches.invalidate();
        self.original = Some(netlist.clone());
        self.netlist = netlist;
    }

    /// The mapped netlist before any transformation, if mapping ran.
    pub fn original(&self) -> Option<&Netlist> {
        self.original.as_ref()
    }
}

/// One transformation or analysis over the [`FlowContext`].
pub trait Pass: Sync + Send {
    /// Short stable identifier (shows up in traces and JSON).
    fn name(&self) -> String;

    /// Category used by the builder's ordering validation.
    fn kind(&self) -> PassKind {
        PassKind::Other
    }

    /// Executes the pass.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] when the pass's invariants cannot be
    /// established (verification failures, indivisible weighted gaps).
    fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError>;
}

/// Per-pass instrumentation record.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PassStats {
    /// Pass name.
    pub pass: String,
    /// Wall-clock execution time in microseconds.
    pub micros: u64,
    /// Component counts before the pass ran.
    pub counts_before: KindCounts,
    /// Component counts after the pass ran.
    pub counts_after: KindCounts,
    /// Components the pass added, per kind (saturating — the flow's
    /// passes only add components).
    pub added: KindCounts,
    /// Netlist depth before the pass.
    pub depth_before: u32,
    /// Netlist depth after the pass.
    pub depth_after: u32,
    /// Priced area / energy / cycle-time state around the pass, present
    /// when the run carries a cost model.
    pub priced: Option<PricedDelta>,
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {:>8.1} ms  depth {:>3} → {:<3}",
            self.pass,
            self.micros as f64 / 1000.0,
            self.depth_before,
            self.depth_after,
        )?;
        let a = &self.added;
        if a.priced_total() > 0 {
            write!(
                f,
                "  +{} (MAJ {}, INV {}, BUF {}, FOG {})",
                a.priced_total(),
                a.maj,
                a.inv,
                a.buf,
                a.fog
            )?;
        }
        if let Some(priced) = &self.priced {
            write!(f, "  [{priced}]")?;
        }
        Ok(())
    }
}

/// Everything one pipeline execution produced.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// The flow result in the legacy [`FlowResult`] shape.
    pub result: FlowResult,
    /// Weighted-insertion statistics, when a weighted pass ran (the
    /// legacy result shape has no slot for them).
    pub weighted: Option<WeightedInsertion>,
    /// Per-pass instrumentation, in execution order.
    pub trace: Vec<PassStats>,
}

impl PipelineRun {
    /// Renders the instrumentation trace as an aligned text block.
    pub fn trace_table(&self) -> String {
        let mut out = String::new();
        for stats in &self.trace {
            out.push_str(&stats.to_string());
            out.push('\n');
        }
        out
    }
}

/// Why a pipeline could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The pipeline has no passes.
    Empty,
    /// The first pass is not a mapping pass (nothing would populate the
    /// netlist).
    MapNotFirst,
    /// More than one mapping pass was registered.
    DuplicateMap,
    /// A MIG rewrite pass was placed after the mapping pass — rewrites
    /// transform the working MIG, which mapping has already consumed.
    RewriteAfterMap,
    /// A fan-out restriction pass was placed after buffer insertion —
    /// §IV requires splitting fan-out *before* balancing, because FOG
    /// chains change path lengths.
    FanoutAfterBuffers,
    /// A transform pass was placed after a verification pass.
    TransformAfterVerify,
    /// The equivalence gate's policy has zero sampling rounds: any
    /// circuit above the exhaustive ceiling would "pass" the gate after
    /// comparing zero patterns.
    GateZeroRounds,
    /// The equivalence gate's exhaustive ceiling is beyond what a block
    /// sweep can realistically cover per pass boundary (cost doubles
    /// per input; see [`crate::spec::MAX_EXHAUSTIVE_GATE_INPUTS`]).
    GateCeilingTooHigh(u32),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Empty => write!(f, "pipeline has no passes"),
            PipelineError::MapNotFirst => {
                write!(f, "the first pass must map the MIG onto a netlist")
            }
            PipelineError::DuplicateMap => write!(f, "only one mapping pass is allowed"),
            PipelineError::RewriteAfterMap => write!(
                f,
                "MIG rewrite passes must run before mapping (the netlist passes cannot \
                 observe a rewritten graph)"
            ),
            PipelineError::FanoutAfterBuffers => write!(
                f,
                "fan-out restriction must run before buffer insertion (§IV)"
            ),
            PipelineError::TransformAfterVerify => {
                write!(f, "transform passes cannot follow verification")
            }
            PipelineError::GateZeroRounds => write!(
                f,
                "equivalence gate has zero sampling rounds: circuits above the exhaustive \
                 ceiling would pass after comparing zero patterns"
            ),
            PipelineError::GateCeilingTooHigh(inputs) => write!(
                f,
                "equivalence gate's exhaustive ceiling of {inputs} inputs is beyond the \
                 practical limit of {} (cost doubles per input)",
                crate::spec::MAX_EXHAUSTIVE_GATE_INPUTS
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// An ordered, validated sequence of passes, optionally carrying a
/// default technology cost model.
pub struct FlowPipeline {
    passes: Vec<Box<dyn Pass>>,
    cost: Option<CostTable>,
    equivalence: Option<mig::EquivalencePolicy>,
    lints: bool,
}

impl fmt::Debug for FlowPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowPipeline")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("cost", &self.cost.as_ref().map(|t| t.name().to_owned()))
            .field("equivalence", &self.equivalence)
            .field("lints", &self.lints)
            .finish()
    }
}

impl FlowPipeline {
    /// Starts an empty pipeline builder.
    pub fn builder() -> FlowPipelineBuilder {
        FlowPipelineBuilder::default()
    }

    /// Assembles the default pipeline for a [`crate::FlowConfig`] — the
    /// exact pass sequence the legacy `run_flow` hardcoded, compiled
    /// from its declarative form
    /// ([`crate::PipelineSpec::for_config`]).
    pub fn for_config(config: crate::FlowConfig) -> FlowPipeline {
        crate::spec::PipelineSpec::for_config(config)
            .build()
            .expect("the default pipeline is always well-ordered")
    }

    /// Names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline on one graph, collecting per-pass
    /// instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PassError`], or a [`PassError::Custom`]
    /// if the mapping pass never installed a netlist (a custom pass
    /// with `kind() == PassKind::Map` must call
    /// [`FlowContext::set_mapped`]).
    pub fn run(&self, graph: &Mig) -> Result<PipelineRun, PassError> {
        self.run_with_model(graph, self.cost.as_ref())
    }

    /// [`FlowPipeline::run`] with an explicit cost model, overriding
    /// the pipeline's default — the per-cell entry point of
    /// [`FlowPipeline::run_grid`]. `None` runs cost-blind (no priced
    /// trace entries).
    ///
    /// # Errors
    ///
    /// As [`FlowPipeline::run`].
    pub fn run_with_model(
        &self,
        graph: &Mig,
        model: Option<&CostTable>,
    ) -> Result<PipelineRun, PassError> {
        let mut ctx = FlowContext::new(graph, model.cloned());
        let mut trace = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            // Rewrite passes run before mapping, so their effect lives
            // in the working MIG, not the (still empty) netlist:
            // instrument them with projected MIG quantities instead.
            let is_rewrite = pass.kind() == PassKind::Rewrite;
            let measure_mig = |ctx: &FlowContext<'_>| {
                let g = ctx.working_graph();
                (
                    crate::optimize::mig_projected_counts(g),
                    g.output_count(),
                    g.depth(),
                )
            };
            let (counts_before, outputs_before, depth_before) = if is_rewrite {
                measure_mig(&ctx)
            } else {
                (
                    ctx.netlist.counts(),
                    ctx.netlist.outputs().len(),
                    ctx.try_depth()?,
                )
            };
            let started = Instant::now();
            pass.run(&mut ctx)?;
            let micros = started.elapsed().as_micros() as u64;
            debug_assert!(
                ctx.netlist.validate().is_ok(),
                "pass `{}` left the netlist ill-formed: {}",
                pass.name(),
                ctx.netlist.validate().unwrap_err()
            );
            // Fallible on purpose: a custom pass that wired a cycle is
            // caught here and fails the run instead of panicking deep
            // inside a level computation.
            let (counts_after, outputs_after, depth_after) = if is_rewrite {
                measure_mig(&ctx)
            } else {
                (
                    ctx.netlist.counts(),
                    ctx.netlist.outputs().len(),
                    ctx.try_depth()?,
                )
            };
            let priced = ctx.cost.as_ref().map(|table| PricedDelta {
                model: table.name().to_owned(),
                before: table.price(&counts_before, outputs_before, depth_before),
                after: table.price(&counts_after, outputs_after, depth_after),
            });
            trace.push(PassStats {
                pass: pass.name(),
                micros,
                counts_before,
                counts_after,
                added: counts_after.added_since(&counts_before),
                depth_before,
                depth_after,
                priced,
            });

            // Pre-map gate counterparts for rewrite passes: the working
            // netlist does not exist yet, so the static gate lints the
            // optimized MIG and the equivalence gate checks it against
            // the source graph directly at the MIG level.
            if is_rewrite {
                if self.lints {
                    use crate::lint::{LintContext, LintDriver, LintFailure, Severity};
                    // MIG004 is the only error-severity MIG rule
                    // (topological arena storage); warnings never trip
                    // the gate.
                    let lctx = LintContext::new().with_graph(ctx.working_graph());
                    let diagnostics: Vec<_> = LintDriver::with_codes(&["MIG004"])
                        .run(&lctx)
                        .into_iter()
                        .filter(|d| d.severity == Severity::Error)
                        .collect();
                    if !diagnostics.is_empty() {
                        return Err(PassError::Lint(Box::new(LintFailure {
                            pass: pass.name(),
                            diagnostics,
                        })));
                    }
                }
                if let Some(policy) = &self.equivalence {
                    match mig::check_equivalence_with_policy(ctx.working_graph(), ctx.graph, policy)
                    {
                        Ok(verdict) if verdict.holds() => {}
                        Ok(mig::Equivalence::NotEqual { output, pattern }) => {
                            return Err(PassError::Custom(format!(
                                "equivalence gate after `{}`: rewritten MIG diverges from the \
                                 source graph on output `{output}` under pattern {pattern:?}",
                                pass.name()
                            )));
                        }
                        Ok(_) => unreachable!("holds() covers Equal and ProbablyEqual"),
                        Err(e) => {
                            return Err(PassError::Custom(format!(
                                "equivalence gate after `{}`: {e}",
                                pass.name()
                            )))
                        }
                    }
                }
            }

            // Opt-in static gate: re-lint the working netlist at every
            // pass boundary, with the rule set growing as the flow
            // makes guarantees (structural rules always; the fan-out
            // rule once restriction enforced a limit; the balance
            // rules once buffer insertion equalized paths). Runs
            // outside the pass's timed window, like the equivalence
            // gate below, and costs only a level/fan-out recomputation
            // — no simulation.
            if self.lints && ctx.original.is_some() {
                use crate::lint::{LintContext, LintDriver, LintFailure, Severity};
                // Only error-severity rules: warnings never trip the
                // gate, so running them here would be wasted work.
                let mut codes = vec!["WP004", "WP005"];
                if ctx.fanout.is_some() {
                    codes.push("WP003");
                }
                if ctx.buffers.is_some() {
                    codes.extend(["WP001", "WP002"]);
                }
                let lctx = LintContext::new()
                    .with_netlist(&ctx.netlist)
                    .with_fanout_limit(ctx.fanout.as_ref().map(|f| f.limit));
                let diagnostics: Vec<_> = LintDriver::with_codes(&codes)
                    .run(&lctx)
                    .into_iter()
                    .filter(|d| d.severity == Severity::Error)
                    .collect();
                if !diagnostics.is_empty() {
                    return Err(PassError::Lint(Box::new(LintFailure {
                        pass: pass.name(),
                        diagnostics,
                    })));
                }
            }

            // Opt-in self-verification: after every pass boundary past
            // mapping, the working netlist must still compute the
            // source MIG's function. Runs outside the pass's timed
            // window — the gate is instrumentation, not a pass.
            if let Some(policy) = &self.equivalence {
                if ctx.original.is_some() {
                    use crate::verify::differential::{self, Verdict};
                    // Share the cached flattening: the gate reuses the
                    // same arena any later structural consumer of this
                    // snapshot will read.
                    let checked = ctx
                        .caches
                        .try_eval_arena(&ctx.netlist)
                        .map_err(differential::DifferentialError::Netlist)
                        .and_then(|arena| {
                            differential::check_prepared(
                                &ctx.netlist,
                                arena,
                                ctx.graph,
                                policy,
                                &mig::SweepConfig::from_env(),
                            )
                        });
                    match checked {
                        Ok(Verdict::Equivalent { .. }) => {}
                        Ok(Verdict::Diverged(mut cex)) => {
                            cex.pass = Some(pass.name());
                            return Err(PassError::Equivalence(Box::new(cex)));
                        }
                        Err(e) => {
                            return Err(PassError::Custom(format!(
                                "equivalence gate after `{}`: {e}",
                                pass.name()
                            )))
                        }
                    }
                }
            }
        }

        // The builder only checks the *kind tag*; a custom mapping pass
        // could still forget to install a netlist. Surface that as an
        // error rather than panicking.
        let original = ctx.original.take().ok_or_else(|| {
            PassError::Custom(
                "mapping pass never installed a netlist (call FlowContext::set_mapped)".to_owned(),
            )
        })?;
        Ok(PipelineRun {
            result: FlowResult {
                original,
                pipelined: ctx.netlist,
                fanout: ctx.fanout,
                buffers: ctx.buffers,
                report: ctx.report,
            },
            weighted: ctx.weighted,
            trace,
        })
    }

    /// Runs the pipeline over many graphs in parallel (one task per
    /// graph, scheduled across all cores), preserving input order.
    pub fn run_batch(&self, graphs: &[&Mig]) -> Vec<Result<PipelineRun, PassError>> {
        graphs.par_iter().map(|graph| self.run(graph)).collect()
    }

    /// Runs the full circuit × technology grid: every `(graph, model)`
    /// cell is one task on the work-pulling parallel scheduler, so a
    /// whole multi-technology sweep costs one driver call instead of a
    /// hand-rolled per-technology loop.
    ///
    /// Every cell carries its model into the run, so priced trace
    /// entries come back per (circuit, technology, pass) and cost-aware
    /// passes may legitimately produce *different* netlists per
    /// technology; with a cost-blind pipeline every cell of one circuit
    /// row is structurally identical and only the pricing differs.
    ///
    /// Cells are returned circuit-major (`circuit * models.len() +
    /// model`), matching the input orders. An empty `models` slice
    /// yields an empty grid.
    ///
    /// Since the engine-facade redesign this is a thin wrapper over an
    /// uncached [`crate::Engine`] — prefer a long-lived engine (and a
    /// [`crate::FlowSpec`] or
    /// [`crate::Engine::run_pipeline_grid`]) to get result caching
    /// across overlapping sweeps; results are bit-identical either way.
    pub fn run_grid(&self, graphs: &[&Mig], models: &[CostTable]) -> Vec<GridCell> {
        if models.is_empty() {
            return Vec::new();
        }
        crate::engine::Engine::uncached()
            .grid_cells(self, None, graphs, models, None, &|_| {})
            .into_iter()
            .map(|cell| GridCell {
                circuit: cell.circuit,
                model: cell.technology.expect("non-empty models price every cell"),
                outcome: cell
                    .outcome
                    .map(|run| Arc::try_unwrap(run).unwrap_or_else(|shared| (*shared).clone())),
            })
            .collect()
    }
}

/// One cell of a [`FlowPipeline::run_grid`] sweep.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Index into the `graphs` argument.
    pub circuit: usize,
    /// Index into the `models` argument.
    pub model: usize,
    /// The cell's pipeline run (or the first pass failure).
    pub outcome: Result<PipelineRun, PassError>,
}

/// Runs a circuit grid over several *pipeline configurations* (the
/// other sweep axis: Fig 8's BUF / FO2..5+BUF ladder). Every
/// `(pipeline, graph)` cell is one task on the same work-pulling
/// scheduler as [`FlowPipeline::run_grid`]; results come back
/// pipeline-major (`result[p][g]`).
///
/// Legacy, engine-less driver: it accepts arbitrary (even custom-pass)
/// pipelines, so it cannot be content-hash cached. Callers sweeping
/// *declarative* configurations should run one
/// [`crate::Engine::run_pipeline_grid`] per [`crate::PipelineSpec`]
/// instead and get caching across overlapping sweeps (what the bench
/// harness's Fig 8 driver does).
pub fn run_config_grid(
    pipelines: &[&FlowPipeline],
    graphs: &[&Mig],
) -> Vec<Vec<Result<PipelineRun, PassError>>> {
    let cells: Vec<(usize, usize)> = (0..pipelines.len())
        .flat_map(|p| (0..graphs.len()).map(move |g| (p, g)))
        .collect();
    let flat: Vec<Result<PipelineRun, PassError>> = cells
        .par_iter()
        .map(|&(p, g)| pipelines[p].run(graphs[g]))
        .collect();
    let mut flat = flat.into_iter();
    pipelines
        .iter()
        .map(|_| flat.by_ref().take(graphs.len()).collect())
        .collect()
}

/// Buffer-insertion strategy selector for [`FlowPipelineBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferStrategy {
    /// Algorithm 1 against ASAP levels (the paper's reference).
    Asap,
    /// Algorithm 1 against hill-climbed retimed levels (fewer buffers,
    /// identical depth).
    Retimed,
    /// Weighted-delay balancing with per-kind delays (§III's
    /// technology-tailored mode).
    Weighted(DelayWeights),
    /// Phase-weight-aware balancing: delay weights derived from the
    /// run's cost model ([`CostTable::phase_occupancy`]); degenerates
    /// to [`BufferStrategy::Asap`] when every component fits in one
    /// phase (SWD, NML). Requires a cost model on the run.
    CostAware,
}

/// Incremental pipeline assembly with ordering validation at
/// [`FlowPipelineBuilder::build`].
///
/// # Examples
///
/// ```
/// use wavepipe::{BufferStrategy, FlowPipeline};
///
/// // The paper's §V configuration, as an explicit pipeline:
/// let pipeline = FlowPipeline::builder()
///     .map(false)
///     .restrict_fanout(3)
///     .insert_buffers(BufferStrategy::Asap)
///     .verify(Some(3))
///     .build()
///     .unwrap();
/// assert_eq!(pipeline.pass_names().len(), 4);
///
/// // Ill-ordered pipelines fail to build:
/// let err = FlowPipeline::builder()
///     .map(false)
///     .insert_buffers(BufferStrategy::Asap)
///     .restrict_fanout(3)
///     .build()
///     .unwrap_err();
/// assert_eq!(err, wavepipe::PipelineError::FanoutAfterBuffers);
/// ```
#[derive(Default)]
pub struct FlowPipelineBuilder {
    passes: Vec<Box<dyn Pass>>,
    cost: Option<CostTable>,
    equivalence: Option<mig::EquivalencePolicy>,
    lints: bool,
}

impl fmt::Debug for FlowPipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowPipelineBuilder")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("cost", &self.cost.as_ref().map(|t| t.name().to_owned()))
            .field("equivalence", &self.equivalence)
            .field("lints", &self.lints)
            .finish()
    }
}

impl FlowPipelineBuilder {
    /// Turns on per-pass equivalence gating: after every pass past
    /// mapping, the working netlist is differentially checked against
    /// the source MIG under `policy`
    /// ([`crate::differential::check`]). A pass that breaks the
    /// function fails its run with
    /// [`PassError::Equivalence`], whose counterexample records the
    /// offending pass — so any sweep can self-verify instead of
    /// trusting the transforms' structural proofs.
    pub fn gate_equivalence(mut self, policy: mig::EquivalencePolicy) -> FlowPipelineBuilder {
        self.equivalence = Some(policy);
        self
    }

    /// Turns on per-pass lint gating: after every pass past mapping,
    /// the working netlist is re-linted with the error-severity
    /// structural rules appropriate to the pipeline's progress (cycles
    /// and well-formedness always; the `WP003` fan-out rule once a
    /// restriction pass enforced a limit; the `WP001`/`WP002` balance
    /// rules once buffer insertion equalized paths — see
    /// [`crate::lint`]). A pass that breaks a statically-provable
    /// legality condition fails its run with [`PassError::Lint`] naming
    /// it — a zero-simulation counterpart to
    /// [`FlowPipelineBuilder::gate_equivalence`].
    pub fn gate_lints(mut self) -> FlowPipelineBuilder {
        self.lints = true;
        self
    }
    /// Attaches a technology cost model to the pipeline: every run
    /// prices its per-pass trace against it, and cost-aware passes
    /// ([`FlowPipelineBuilder::restrict_fanout_cost_aware`],
    /// [`BufferStrategy::CostAware`]) consult it. Overridable per run
    /// via [`FlowPipeline::run_with_model`] / the grid driver.
    pub fn with_cost_model(mut self, model: &dyn CostModel) -> FlowPipelineBuilder {
        self.cost = Some(CostTable::from_model(model));
        self
    }

    /// Adds a depth-oriented MIG rewrite pass (Ω.A associativity +
    /// Ω.D distributivity, `mig::optimize_depth`). Must precede the
    /// mapping pass; `max_rounds` bounds the rewrite iterations.
    pub fn optimize_depth(self, max_rounds: usize) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::optimize::OptimizeDepthPass { max_rounds }))
    }

    /// Adds a size-oriented MIG rewrite pass (Ω.D distributivity
    /// collapse, `mig::optimize_size`). Must precede the mapping pass.
    pub fn optimize_size(self, max_rounds: usize) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::optimize::OptimizeSizePass { max_rounds }))
    }

    /// Adds a cost-aware MIG rewrite pass that runs both objectives and
    /// keeps whichever minimizes the projected priced area × latency
    /// under the run's cost model (requires one; see
    /// [`OptimizeCostAwarePass`](crate::optimize::OptimizeCostAwarePass)).
    pub fn optimize_cost_aware(self, max_rounds: usize) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::optimize::OptimizeCostAwarePass {
            max_rounds,
        }))
    }

    /// Adds the MIG→netlist mapping pass; `minimize_inverters` selects
    /// the polarity-local-search mapping.
    pub fn map(self, minimize_inverters: bool) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::from_mig::MapPass { minimize_inverters }))
    }

    /// Adds a fan-out restriction pass with the §IV limit `k ∈ 2..=5`.
    pub fn restrict_fanout(self, limit: u32) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::fanout_restriction::FanoutRestrictionPass {
            limit,
        }))
    }

    /// Adds a cost-aware fan-out restriction pass that picks the limit
    /// `k ∈ 2..=5` minimizing the projected priced area under the run's
    /// cost model (see
    /// [`CostAwareFanoutPass`](crate::fanout_restriction::CostAwareFanoutPass)).
    pub fn restrict_fanout_cost_aware(self) -> FlowPipelineBuilder {
        self.pass(Box::new(
            crate::fanout_restriction::CostAwareFanoutPass::default(),
        ))
    }

    /// Adds a buffer-insertion pass with the chosen strategy.
    pub fn insert_buffers(self, strategy: BufferStrategy) -> FlowPipelineBuilder {
        match strategy {
            BufferStrategy::Asap => {
                self.pass(Box::new(crate::buffer_insertion::BufferInsertionPass))
            }
            BufferStrategy::Retimed => self.pass(Box::new(crate::retiming::RetimedInsertionPass)),
            BufferStrategy::Weighted(weights) => {
                self.pass(Box::new(crate::weighted::WeightedInsertionPass { weights }))
            }
            BufferStrategy::CostAware => {
                self.pass(Box::new(crate::weighted::CostAwareInsertionPass))
            }
        }
    }

    /// Adds unit-delay balance verification (plus the fan-out bound
    /// when `fanout_limit` is given).
    pub fn verify(self, fanout_limit: Option<u32>) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::balance::VerifyBalancePass { fanout_limit }))
    }

    /// Adds weighted-delay balance verification.
    pub fn verify_weighted(self, weights: DelayWeights) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::weighted::VerifyWeightedPass { weights }))
    }

    /// Adds cost-aware balance verification: checks against the phase
    /// weights the run's cost model implies (the verifier matching
    /// [`BufferStrategy::CostAware`]). `fanout_limit` additionally
    /// enforces the §IV bound.
    pub fn verify_cost_aware(self, fanout_limit: Option<u32>) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::weighted::CostAwareVerifyPass {
            fanout_limit,
        }))
    }

    /// Adds a fan-out bound check without full balance verification
    /// (the FOx-only configurations of Fig 8).
    pub fn check_fanout_bound(self, limit: u32) -> FlowPipelineBuilder {
        self.pass(Box::new(crate::balance::FanoutBoundPass { limit }))
    }

    /// Registers an arbitrary custom pass.
    pub fn pass(mut self, pass: Box<dyn Pass>) -> FlowPipelineBuilder {
        self.passes.push(pass);
        self
    }

    /// Validates ordering and produces the pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when the pass sequence violates the
    /// structural constraints (map first, fan-out restriction before
    /// buffer insertion, no transforms after verification).
    pub fn build(self) -> Result<FlowPipeline, PipelineError> {
        let kinds: Vec<PassKind> = self.passes.iter().map(|p| p.kind()).collect();
        validate_order(&kinds)?;
        // Guard the gate here too (not just at the spec layer): builder
        // users would otherwise install a vacuous (zero-round) or
        // per-boundary-intractable gate with no error.
        if let Some(gate) = &self.equivalence {
            if gate.rounds == 0 {
                return Err(PipelineError::GateZeroRounds);
            }
            if gate.exhaustive_inputs > crate::spec::MAX_EXHAUSTIVE_GATE_INPUTS {
                return Err(PipelineError::GateCeilingTooHigh(gate.exhaustive_inputs));
            }
        }
        Ok(FlowPipeline {
            passes: self.passes,
            cost: self.cost,
            equivalence: self.equivalence,
            lints: self.lints,
        })
    }
}

/// The ordering rules, factored out so tests can drive them directly.
pub(crate) fn validate_order(kinds: &[PassKind]) -> Result<(), PipelineError> {
    if kinds.is_empty() {
        return Err(PipelineError::Empty);
    }
    // MIG rewrites form an optional prefix; the first netlist pass must
    // be the map, and no rewrite may follow it.
    let map_at = kinds
        .iter()
        .take_while(|k| **k == PassKind::Rewrite)
        .count();
    if kinds.get(map_at) != Some(&PassKind::Map) {
        return Err(PipelineError::MapNotFirst);
    }
    if kinds[map_at + 1..].contains(&PassKind::Map) {
        return Err(PipelineError::DuplicateMap);
    }
    if kinds[map_at + 1..].contains(&PassKind::Rewrite) {
        return Err(PipelineError::RewriteAfterMap);
    }
    let first_buffer = kinds.iter().position(|k| *k == PassKind::BufferInsertion);
    let last_fanout = kinds
        .iter()
        .rposition(|k| *k == PassKind::FanoutRestriction);
    if let (Some(buffer), Some(fanout)) = (first_buffer, last_fanout) {
        if fanout > buffer {
            return Err(PipelineError::FanoutAfterBuffers);
        }
    }
    if let Some(first_verify) = kinds.iter().position(|k| *k == PassKind::Verify) {
        let transform_after = kinds[first_verify..].iter().any(|k| {
            matches!(
                k,
                PassKind::Map | PassKind::FanoutRestriction | PassKind::BufferInsertion
            )
        });
        if transform_after {
            return Err(PipelineError::TransformAfterVerify);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowConfig;

    fn sample_mig(seed: u64) -> Mig {
        mig::random_mig(mig::RandomMigConfig {
            inputs: 8,
            outputs: 4,
            gates: 120,
            depth: 8,
            seed,
        })
    }

    #[test]
    fn default_pipeline_matches_legacy_flow() {
        let g = sample_mig(1);
        let run = FlowPipeline::for_config(FlowConfig::default())
            .run(&g)
            .unwrap();
        let legacy = crate::flow::run_flow(&g, FlowConfig::default()).unwrap();
        assert_eq!(run.result.pipelined_counts(), legacy.pipelined_counts());
        assert_eq!(run.result.original_counts(), legacy.original_counts());
        assert_eq!(run.result.pipelined.depth(), legacy.pipelined.depth());
        assert_eq!(run.result.report, legacy.report);
        assert_eq!(run.result.fanout, legacy.fanout);
        assert_eq!(run.result.buffers, legacy.buffers);
    }

    #[test]
    fn trace_records_every_pass_in_order() {
        let g = sample_mig(2);
        let run = FlowPipeline::for_config(FlowConfig::default())
            .run(&g)
            .unwrap();
        let names: Vec<String> = run.trace.iter().map(|s| s.pass.clone()).collect();
        assert_eq!(
            names,
            vec![
                "map",
                "fanout_restriction(3)",
                "insert_buffers(asap)",
                "verify(fo≤3)"
            ]
        );
        // The mapping pass creates the netlist from nothing.
        assert_eq!(run.trace[0].counts_before, KindCounts::default());
        // Fan-out restriction only adds FOGs; insertion only buffers.
        assert_eq!(run.trace[1].added.buf, 0);
        assert!(run.trace[1].added.fog > 0);
        assert!(run.trace[2].added.buf > 0);
        assert_eq!(run.trace[2].added.fog, 0);
        // Verification transforms nothing.
        assert_eq!(run.trace[3].added, KindCounts::default());
        assert!(run.trace_table().contains("insert_buffers(asap)"));
    }

    #[test]
    fn builder_rejects_ill_ordered_pipelines() {
        assert_eq!(
            FlowPipeline::builder().build().unwrap_err(),
            PipelineError::Empty
        );
        assert_eq!(
            FlowPipeline::builder()
                .restrict_fanout(3)
                .build()
                .unwrap_err(),
            PipelineError::MapNotFirst
        );
        assert_eq!(
            FlowPipeline::builder()
                .map(false)
                .map(true)
                .build()
                .unwrap_err(),
            PipelineError::DuplicateMap
        );
        assert_eq!(
            FlowPipeline::builder()
                .map(false)
                .insert_buffers(BufferStrategy::Asap)
                .restrict_fanout(3)
                .build()
                .unwrap_err(),
            PipelineError::FanoutAfterBuffers
        );
        assert_eq!(
            FlowPipeline::builder()
                .map(false)
                .verify(None)
                .insert_buffers(BufferStrategy::Asap)
                .build()
                .unwrap_err(),
            PipelineError::TransformAfterVerify
        );
        // Unusable equivalence gates are rejected at build time too
        // (the spec layer rejects the same shapes with SpecErrors).
        assert_eq!(
            FlowPipeline::builder()
                .map(false)
                .gate_equivalence(mig::EquivalencePolicy::sampled(0, 1))
                .build()
                .unwrap_err(),
            PipelineError::GateZeroRounds
        );
        assert_eq!(
            FlowPipeline::builder()
                .map(false)
                .gate_equivalence(mig::EquivalencePolicy::exhaustive(40))
                .build()
                .unwrap_err(),
            PipelineError::GateCeilingTooHigh(40)
        );
    }

    #[test]
    fn retimed_strategy_is_a_one_line_edit() {
        let g = sample_mig(3);
        let asap = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        let retimed = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Retimed)
            .verify(Some(3))
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        assert!(retimed.result.buffers.unwrap().total() <= asap.result.buffers.unwrap().total());
        assert_eq!(
            retimed.result.pipelined.depth(),
            asap.result.pipelined.depth()
        );
    }

    #[test]
    fn weighted_strategy_populates_weighted_stats() {
        let g = sample_mig(4);
        let run = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Weighted(DelayWeights::QCA))
            .verify_weighted(DelayWeights::QCA)
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        assert!(run.weighted.unwrap().buffers > 0);
        assert!(run.result.buffers.is_none());
    }

    #[test]
    fn batch_driver_matches_single_runs() {
        let graphs: Vec<Mig> = (10..16).map(sample_mig).collect();
        let refs: Vec<&Mig> = graphs.iter().collect();
        let pipeline = FlowPipeline::for_config(FlowConfig::default());
        let batch = pipeline.run_batch(&refs);
        assert_eq!(batch.len(), graphs.len());
        for (graph, outcome) in graphs.iter().zip(batch) {
            let single = pipeline.run(graph).unwrap();
            let parallel = outcome.unwrap();
            assert_eq!(
                single.result.pipelined_counts(),
                parallel.result.pipelined_counts()
            );
            assert_eq!(single.result.report, parallel.result.report);
        }
    }

    #[test]
    fn map_kind_pass_that_never_maps_is_an_error_not_a_panic() {
        struct ForgetfulMapPass;
        impl Pass for ForgetfulMapPass {
            fn name(&self) -> String {
                "forgetful_map".to_owned()
            }
            fn kind(&self) -> PassKind {
                PassKind::Map
            }
            fn run(&self, _ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
                Ok(()) // claims to map but never calls set_mapped
            }
        }
        let g = sample_mig(6);
        let err = FlowPipeline::builder()
            .pass(Box::new(ForgetfulMapPass))
            .build()
            .expect("kind tag satisfies the builder")
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, PassError::Custom(_)), "{err}");
    }

    /// Flat unit-cost model: every priced kind costs 1 on every axis.
    struct FlatModel;

    impl crate::cost::CostModel for FlatModel {
        fn cost_name(&self) -> &str {
            "FLAT"
        }
        fn area_of(&self, kind: crate::ComponentKind) -> f64 {
            if kind.is_priced() {
                1.0
            } else {
                0.0
            }
        }
        fn delay_of(&self, kind: crate::ComponentKind) -> f64 {
            self.area_of(kind)
        }
        fn energy_of(&self, kind: crate::ComponentKind) -> f64 {
            self.area_of(kind)
        }
        fn phase_delay(&self) -> f64 {
            1.0
        }
        fn output_sense_energy(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn cost_model_prices_every_pass() {
        let g = sample_mig(7);
        let run = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .with_cost_model(&FlatModel)
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        for stats in &run.trace {
            let priced = stats.priced.as_ref().expect("cost model configured");
            assert_eq!(priced.model, "FLAT");
            assert!(priced.after.area >= priced.before.area, "flow only adds");
        }
        // Under the flat model, area == priced component count, and the
        // final cycle time is the final depth (phase = 1 ns).
        let last = run.trace.last().unwrap().priced.as_ref().unwrap();
        assert_eq!(
            last.after.area,
            run.result.pipelined.counts().priced_total() as f64
        );
        assert_eq!(last.after.latency, f64::from(run.result.pipelined.depth()));
        // Verification transforms nothing, so it prices to a zero delta.
        assert_eq!(run.trace[3].priced.as_ref().unwrap().area_delta(), 0.0);
        // Without a model the same pipeline records no priced entries.
        let blind = FlowPipeline::for_config(FlowConfig::default())
            .run(&g)
            .unwrap();
        assert!(blind.trace.iter().all(|s| s.priced.is_none()));
    }

    #[test]
    fn grid_covers_every_cell_circuit_major_and_matches_single_runs() {
        let graphs: Vec<Mig> = (30..33).map(sample_mig).collect();
        let refs: Vec<&Mig> = graphs.iter().collect();
        let table = crate::cost::CostTable::from_model(&FlatModel);
        let models = vec![table.clone(), table];
        let pipeline = FlowPipeline::for_config(FlowConfig::default());
        let cells = pipeline.run_grid(&refs, &models);
        assert_eq!(cells.len(), graphs.len() * models.len());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.circuit, i / models.len());
            assert_eq!(cell.model, i % models.len());
            let run = cell.outcome.as_ref().expect("grid cell verifies");
            let single = pipeline.run(&graphs[cell.circuit]).unwrap();
            assert_eq!(
                run.result.pipelined_counts(),
                single.result.pipelined_counts()
            );
            assert!(run.trace.iter().all(|s| s.priced.is_some()));
        }
        assert!(pipeline.run_grid(&refs, &[]).is_empty());
    }

    #[test]
    fn config_grid_is_pipeline_major() {
        let graphs: Vec<Mig> = (40..42).map(sample_mig).collect();
        let refs: Vec<&Mig> = graphs.iter().collect();
        let fo3 = FlowPipeline::for_config(FlowConfig::default());
        let buf_only = FlowPipeline::builder()
            .map(false)
            .insert_buffers(BufferStrategy::Asap)
            .build()
            .unwrap();
        let grid = run_config_grid(&[&fo3, &buf_only], &refs);
        assert_eq!(grid.len(), 2);
        for (pipeline, row) in [&fo3, &buf_only].iter().zip(&grid) {
            assert_eq!(row.len(), graphs.len());
            for (g, outcome) in refs.iter().zip(row) {
                let single = pipeline.run(g).unwrap();
                let gridded = outcome.as_ref().unwrap();
                assert_eq!(
                    single.result.pipelined_counts(),
                    gridded.result.pipelined_counts()
                );
            }
        }
    }

    #[test]
    fn cost_aware_passes_require_a_model() {
        let g = sample_mig(8);
        let err = FlowPipeline::builder()
            .map(false)
            .restrict_fanout_cost_aware()
            .insert_buffers(BufferStrategy::Asap)
            .verify(None)
            .build()
            .unwrap()
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, PassError::Custom(_)), "{err}");
        let err = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::CostAware)
            .build()
            .unwrap()
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, PassError::Custom(_)), "{err}");
    }

    #[test]
    fn cost_aware_fanout_rejects_infeasible_candidates_without_panicking() {
        // A candidate below the physical minimum must fail the cell,
        // not panic — a panic inside a grid worker aborts the sweep.
        let g = sample_mig(8);
        let err = FlowPipeline::builder()
            .map(false)
            .pass(Box::new(crate::fanout_restriction::CostAwareFanoutPass {
                candidates: vec![1, 3],
            }))
            .with_cost_model(&FlatModel)
            .build()
            .unwrap()
            .run(&g)
            .unwrap_err();
        assert!(
            matches!(&err, PassError::Custom(m) if m.contains("below the physical minimum")),
            "{err}"
        );
    }

    #[test]
    fn cost_aware_flow_verifies_under_a_unit_model() {
        // Unit phase occupancy → the cost-aware strategy IS Algorithm 1;
        // the cost-aware verifier records a plain balance report.
        let g = sample_mig(9);
        let run = FlowPipeline::builder()
            .map(false)
            .restrict_fanout_cost_aware()
            .insert_buffers(BufferStrategy::CostAware)
            .verify_cost_aware(None)
            .with_cost_model(&FlatModel)
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        let fanout = run.result.fanout.expect("restriction ran");
        assert!((2..=5).contains(&fanout.limit));
        assert!(run.result.pipelined.max_fanout() <= fanout.limit);
        assert!(run.result.buffers.is_some(), "unit weights → plain stats");
        assert!(run.result.report.is_some());
    }

    #[test]
    fn custom_pass_wiring_a_cycle_is_an_error_not_a_panic() {
        // A cycle breaks every downstream analysis; the pass boundary
        // must surface it as a PassError so a grid sweep survives.
        struct CyclePass;
        impl Pass for CyclePass {
            fn name(&self) -> String {
                "cycle".to_owned()
            }
            fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
                let netlist = ctx.netlist_mut();
                let a = netlist.inputs()[0];
                let b1 = netlist.add_buf(a);
                let b2 = netlist.add_buf(b1);
                netlist.component_mut(b1).fanins_mut()[0] = b2;
                Ok(())
            }
        }
        let g = sample_mig(11);
        let err = FlowPipeline::builder()
            .map(false)
            .pass(Box::new(CyclePass))
            .build()
            .unwrap()
            .run(&g)
            .unwrap_err();
        assert!(
            matches!(
                err,
                PassError::Netlist(crate::netlist::NetlistError::CombinationalCycle(_))
            ),
            "{err}"
        );
    }

    #[test]
    fn equivalence_gate_passes_a_correct_flow_and_names_a_broken_pass() {
        // A pass that silently inverts an output: without the gate the
        // run "succeeds"; with it, the run fails naming the pass and
        // carrying a replayable counterexample.
        struct FlipOutputPass;
        impl Pass for FlipOutputPass {
            fn name(&self) -> String {
                "flip_output".to_owned()
            }
            fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
                let netlist = ctx.netlist_mut();
                let driver = netlist.outputs()[0].driver;
                let inv = netlist.add_inv(driver);
                netlist.set_output_driver(0, inv);
                Ok(())
            }
        }

        let g = sample_mig(12);
        let policy = mig::EquivalencePolicy::default();

        // The paper's flow self-verifies cleanly under the gate.
        let run = FlowPipeline::builder()
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .gate_equivalence(policy)
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        assert!(run.result.report.is_some());

        // Ungated, the corruption goes unnoticed.
        let silent = FlowPipeline::builder()
            .map(false)
            .pass(Box::new(FlipOutputPass))
            .build()
            .unwrap()
            .run(&g);
        assert!(silent.is_ok(), "without the gate nothing catches this");

        // Gated, the counterexample names the pass.
        let err = FlowPipeline::builder()
            .map(false)
            .pass(Box::new(FlipOutputPass))
            .gate_equivalence(policy)
            .build()
            .unwrap()
            .run(&g)
            .unwrap_err();
        match err {
            PassError::Equivalence(cex) => {
                assert_eq!(cex.pass.as_deref(), Some("flip_output"));
                assert_eq!(cex.output, 0);
                assert_ne!(cex.expected, cex.actual);
                assert_eq!(cex.pattern.len(), 8, "one bit per primary input");
            }
            other => panic!("expected an equivalence failure, got {other}"),
        }
    }

    #[test]
    fn custom_passes_slot_in() {
        struct SweepPass;
        impl Pass for SweepPass {
            fn name(&self) -> String {
                "sweep".to_owned()
            }
            fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
                let swept = ctx.netlist().sweep();
                *ctx.netlist_mut() = swept;
                Ok(())
            }
        }
        let g = sample_mig(5);
        let run = FlowPipeline::builder()
            .map(false)
            .pass(Box::new(SweepPass))
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        assert_eq!(run.trace[1].pass, "sweep");
        assert!(run.result.report.is_some());
    }
}
