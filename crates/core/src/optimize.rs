//! MIG rewrite passes: logic optimization in front of the mapping
//! stage.
//!
//! The paper assumes its input netlists are "already optimized" MIGs
//! (§III); these passes produce such inputs inside the flow itself by
//! wrapping the Ω-axiom optimizers of [`mig::rewrite`] as first-class
//! [`Pass`]es. They run before the mapping pass (the builder enforces
//! the ordering), transform the *working* graph
//! ([`FlowContext::working_graph`]) and leave the source graph
//! untouched, so the pipeline's equivalence gates keep checking
//! end-to-end against the original function.
//!
//! Because no netlist exists yet at a rewrite boundary, the pipeline
//! instruments these passes with *projected* netlist quantities
//! ([`mig_projected_counts`]): majority gates map one-to-one, and every
//! distinct complemented node materializes one shared inverter — the
//! exact shapes [`crate::netlist_from_mig`] later produces.

use crate::netlist::KindCounts;
use crate::pipeline::{FlowContext, Pass, PassError, PassKind};
use mig::Mig;

/// Projects the netlist component counts mapping `graph` would produce:
/// inputs and majority gates one-to-one, plus one inverter per distinct
/// non-constant node referenced in complemented form anywhere (gate
/// fan-in or primary output) — [`crate::netlist_from_mig`] materializes
/// exactly one shared INV per such node. Buffers and fan-out gates are
/// zero (later passes insert them).
pub(crate) fn mig_projected_counts(graph: &Mig) -> KindCounts {
    let mut complemented = vec![false; graph.node_count()];
    for id in graph.node_ids() {
        for s in graph.node(id).fanins() {
            if s.is_complement() {
                complemented[s.node().index()] = true;
            }
        }
    }
    for o in graph.outputs() {
        if o.signal.is_complement() {
            complemented[o.signal.node().index()] = true;
        }
    }
    complemented[mig::NodeId::CONST.index()] = false;
    KindCounts {
        inputs: graph.input_count(),
        maj: graph.gate_count(),
        inv: complemented.iter().filter(|&&c| c).count(),
        ..KindCounts::default()
    }
}

/// Depth-oriented MIG rewrite pass (`mig::optimize_depth`): Ω.A
/// associativity plus Ω.D distributivity, iterated until a round stops
/// improving or `max_rounds` is reached. The result is functionally
/// equivalent and never deeper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizeDepthPass {
    /// Bound on full-graph rewrite rounds.
    pub max_rounds: usize,
}

impl Pass for OptimizeDepthPass {
    fn name(&self) -> String {
        "optimize_depth".to_owned()
    }

    fn kind(&self) -> PassKind {
        PassKind::Rewrite
    }

    fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
        let (optimized, _) = mig::optimize_depth(ctx.working_graph(), self.max_rounds);
        ctx.set_rewritten(optimized);
        Ok(())
    }
}

/// Size-oriented MIG rewrite pass (`mig::optimize_size`): collapses the
/// left-to-right Ω.D distributivity pattern wherever both source gates
/// die with the rewrite. The result is functionally equivalent and
/// never larger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizeSizePass {
    /// Bound on full-graph collapse rounds.
    pub max_rounds: usize,
}

impl Pass for OptimizeSizePass {
    fn name(&self) -> String {
        "optimize_size".to_owned()
    }

    fn kind(&self) -> PassKind {
        PassKind::Rewrite
    }

    fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
        let optimized = mig::optimize_size(ctx.working_graph(), self.max_rounds);
        ctx.set_rewritten(optimized);
        Ok(())
    }
}

/// Cost-aware objective selection: runs *both* optimizers and keeps the
/// candidate minimizing projected priced area × cycle-time under the
/// run's cost model (ties prefer the depth objective — wave pipelining
/// monetizes depth directly as cycle time). Requires a cost model on
/// the run; fails with [`PassError::Custom`] otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizeCostAwarePass {
    /// Bound on rewrite rounds for each objective.
    pub max_rounds: usize,
}

impl Pass for OptimizeCostAwarePass {
    fn name(&self) -> String {
        "optimize_cost_aware".to_owned()
    }

    fn kind(&self) -> PassKind {
        PassKind::Rewrite
    }

    fn run(&self, ctx: &mut FlowContext<'_>) -> Result<(), PassError> {
        let Some(table) = ctx.cost_model().cloned() else {
            return Err(PassError::Custom(
                "optimize_cost_aware requires a cost model on the run \
                 (FlowPipelineBuilder::with_cost_model or a grid sweep)"
                    .to_owned(),
            ));
        };
        let source = ctx.working_graph();
        let (by_depth, _) = mig::optimize_depth(source, self.max_rounds);
        let by_size = mig::optimize_size(source, self.max_rounds);
        let score = |g: &Mig| {
            let priced = table.price(&mig_projected_counts(g), g.output_count(), g.depth());
            priced.area * priced.latency
        };
        let chosen = if score(&by_size) < score(&by_depth) {
            by_size
        } else {
            by_depth
        };
        ctx.set_rewritten(chosen);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferStrategy, FlowPipeline, PipelineError};

    /// Unit-cost model: area/delay/energy 1 for every priced kind.
    struct FlatModel;

    impl crate::cost::CostModel for FlatModel {
        fn cost_name(&self) -> &str {
            "FLAT"
        }
        fn area_of(&self, kind: crate::ComponentKind) -> f64 {
            if kind.is_priced() {
                1.0
            } else {
                0.0
            }
        }
        fn delay_of(&self, kind: crate::ComponentKind) -> f64 {
            self.area_of(kind)
        }
        fn energy_of(&self, kind: crate::ComponentKind) -> f64 {
            self.area_of(kind)
        }
        fn phase_delay(&self) -> f64 {
            1.0
        }
        fn output_sense_energy(&self) -> f64 {
            0.0
        }
    }

    fn skewed_chain(n: usize) -> Mig {
        let mut g = Mig::new();
        let x = g.add_inputs("x", n);
        let mut f = x[n - 1];
        for i in (0..n - 1).rev() {
            f = g.add_and(x[i], f);
        }
        g.add_output("f", f);
        g
    }

    fn shared_context() -> Mig {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 5);
        let a = g.add_maj(x[0], x[1], x[2]);
        let b = g.add_maj(x[0], x[1], x[3]);
        let f = g.add_maj(a, b, x[4]);
        g.add_output("f", f);
        g
    }

    #[test]
    fn projected_counts_match_the_mapped_netlist() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 4);
        let a = g.add_maj(x[0], !x[1], x[2]);
        let f = g.add_maj(a, x[3], !x[0]);
        g.add_output("f", !f);
        let projected = mig_projected_counts(&g);
        let counts = crate::netlist_from_mig(&g).counts();
        assert_eq!(projected.inputs, counts.inputs);
        assert_eq!(projected.maj, counts.maj);
        assert_eq!(projected.inv, counts.inv);
        assert_eq!(projected.buf, 0);
        assert_eq!(projected.fog, 0);
    }

    #[test]
    fn depth_pass_maps_the_optimized_graph() {
        let g = skewed_chain(16);
        let pipeline = FlowPipeline::builder()
            .optimize_depth(16)
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .build()
            .unwrap();
        let run = pipeline.run(&g).unwrap();
        // The rewrite trace entry measures the MIG, pre- vs post-rewrite.
        let stats = &run.trace[0];
        assert_eq!(stats.pass, "optimize_depth");
        assert_eq!(stats.depth_before, 15);
        assert!(stats.depth_after <= 6, "got depth {}", stats.depth_after);
        // The mapped netlist reflects the rewritten (shallow) graph.
        assert!(run.result.original.counts().maj >= 15);
        let (expected, _) = mig::optimize_depth(&g, 16);
        assert_eq!(run.result.original.counts().maj, expected.gate_count());
    }

    #[test]
    fn size_pass_shrinks_the_mapped_netlist() {
        let g = shared_context();
        let pipeline = FlowPipeline::builder()
            .optimize_size(4)
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .build()
            .unwrap();
        let run = pipeline.run(&g).unwrap();
        let stats = &run.trace[0];
        assert_eq!(stats.pass, "optimize_size");
        assert_eq!(stats.counts_before.maj, 3);
        assert_eq!(stats.counts_after.maj, 2);
        assert_eq!(run.result.original.counts().maj, 2);
    }

    #[test]
    fn rewrite_trace_is_priced_under_a_cost_model() {
        let g = skewed_chain(16);
        let pipeline = FlowPipeline::builder()
            .with_cost_model(&FlatModel)
            .optimize_depth(16)
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .build()
            .unwrap();
        let run = pipeline.run(&g).unwrap();
        let priced = run.trace[0].priced.as_ref().expect("priced rewrite entry");
        assert!(
            priced.after.latency < priced.before.latency,
            "depth rewrite must shorten projected cycle time: {priced}"
        );
    }

    #[test]
    fn cost_aware_pass_requires_a_model() {
        let g = skewed_chain(8);
        let pipeline = FlowPipeline::builder()
            .optimize_cost_aware(8)
            .map(false)
            .build()
            .unwrap();
        let err = pipeline.run(&g).unwrap_err();
        assert!(
            err.to_string().contains("requires a cost model"),
            "got: {err}"
        );
    }

    #[test]
    fn cost_aware_pass_picks_an_objective() {
        let g = skewed_chain(16);
        let pipeline = FlowPipeline::builder()
            .with_cost_model(&FlatModel)
            .optimize_cost_aware(16)
            .map(false)
            .build()
            .unwrap();
        let run = pipeline.run(&g).unwrap();
        let stats = &run.trace[0];
        assert_eq!(stats.pass, "optimize_cost_aware");
        // On a skewed chain the depth objective wins: the size objective
        // cannot shrink a chain, so area is flat across the two
        // candidates while latency collapses under the depth rewrite.
        let (by_depth, _) = mig::optimize_depth(&g, 16);
        assert_eq!(stats.depth_after, by_depth.depth());
    }

    #[test]
    fn rewrites_after_map_are_rejected() {
        let err = FlowPipeline::builder()
            .map(false)
            .optimize_depth(4)
            .build()
            .unwrap_err();
        assert_eq!(err, PipelineError::RewriteAfterMap);
    }

    #[test]
    fn rewrite_only_pipelines_are_rejected() {
        let err = FlowPipeline::builder()
            .optimize_depth(4)
            .optimize_size(4)
            .build()
            .unwrap_err();
        assert_eq!(err, PipelineError::MapNotFirst);
    }

    #[test]
    fn rewrites_pass_the_equivalence_gate() {
        let g = skewed_chain(12);
        let pipeline = FlowPipeline::builder()
            .optimize_depth(8)
            .optimize_size(8)
            .map(false)
            .restrict_fanout(3)
            .insert_buffers(BufferStrategy::Asap)
            .verify(Some(3))
            .gate_equivalence(mig::EquivalencePolicy::default())
            .gate_lints()
            .build()
            .unwrap();
        let run = pipeline.run(&g).expect("gated rewritten flow succeeds");
        assert_eq!(run.trace.len(), 6);
    }
}
