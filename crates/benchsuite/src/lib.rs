//! # benchsuite — the 37-circuit MIG benchmark suite
//!
//! Synthetic reconstruction of the benchmark population used by the
//! DATE'17 wave-pipelining paper (the MIG suite of Amarù's TCAD'16,
//! MCNC + arithmetic). Real, functionally-verified generators cover the
//! arithmetic, coding, cipher and datapath families; profile-matched
//! controller/random generators cover the control-dominated names. See
//! DESIGN.md (substitution 1) for why this preserves the behaviour the
//! paper measures.
//!
//! ```
//! use benchsuite::{find, SUITE};
//!
//! assert_eq!(SUITE.len(), 37);
//! let mul = find("MUL8").expect("in the suite").build();
//! assert!(mul.gate_count() > 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
mod registry;
pub mod synth;
pub mod words;

pub use registry::{build_mig, find, BenchmarkSpec, Category, SUITE, TABLE2_SELECTION};
