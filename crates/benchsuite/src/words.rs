//! Word-level construction helpers: multi-bit buses over MIG signals.
//!
//! All benchmark generators build their datapaths through these
//! primitives, so correctness is tested once here (against plain `u64`
//! arithmetic) and inherited everywhere.

use mig::{Mig, Signal};

/// A little-endian bus: `bits[0]` is the least-significant bit.
pub type Word = Vec<Signal>;

/// Ripple-carry addition; returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn ripple_add(g: &mut Mig, a: &[Signal], b: &[Signal], mut carry: Signal) -> (Word, Signal) {
    assert_eq!(a.len(), b.len(), "ripple_add operands must match in width");
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = g.add_full_adder(x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Kogge–Stone parallel-prefix addition; returns `(sum, carry_out)`.
///
/// Depth is logarithmic in the width — the "fast adder" counterpart the
/// depth-optimized MIG benchmarks of the paper's input suite contain.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn kogge_stone_add(
    g: &mut Mig,
    a: &[Signal],
    b: &[Signal],
    carry_in: Signal,
) -> (Word, Signal) {
    assert_eq!(a.len(), b.len(), "kogge_stone operands must match in width");
    assert!(!a.is_empty(), "kogge_stone needs at least one bit");
    let n = a.len();
    // Generate/propagate pairs.
    let mut gen: Vec<Signal> = Vec::with_capacity(n);
    let mut prop: Vec<Signal> = Vec::with_capacity(n);
    for i in 0..n {
        gen.push(g.add_and(a[i], b[i]));
        prop.push(g.add_xor(a[i], b[i]));
    }
    // Fold the carry-in into position 0: g0' = g0 ∨ (p0 ∧ cin).
    let cin_and = g.add_and(prop[0], carry_in);
    gen[0] = g.add_or(gen[0], cin_and);
    // p0 consumed by the carry network as "never propagates past cin".
    let mut gk = gen.clone();
    let mut pk = prop.clone();
    let mut dist = 1;
    while dist < n {
        let (gprev, pprev) = (gk.clone(), pk.clone());
        for i in dist..n {
            let and = g.add_and(pprev[i], gprev[i - dist]);
            gk[i] = g.add_or(gprev[i], and);
            pk[i] = g.add_and(pprev[i], pprev[i - dist]);
        }
        dist *= 2;
    }
    // carries[i] = carry INTO bit i.
    let mut sum = Vec::with_capacity(n);
    sum.push(g.add_xor(prop[0], carry_in));
    for i in 1..n {
        sum.push(g.add_xor(prop[i], gk[i - 1]));
    }
    (sum, gk[n - 1])
}

/// Two's-complement subtraction `a − b`; returns `(difference, borrow-free flag)`
/// where the flag is the adder's carry-out (1 = no borrow, i.e. `a ≥ b`
/// for unsigned operands).
pub fn ripple_sub(g: &mut Mig, a: &[Signal], b: &[Signal]) -> (Word, Signal) {
    let nb: Word = b.iter().map(|&s| !s).collect();
    ripple_add(g, a, &nb, Signal::ONE)
}

/// Unsigned array multiplication; result has `a.len() + b.len()` bits.
///
/// Classic carry-propagate array: one AND row per multiplier bit, summed
/// with ripple adders — the deep multiplier profile (`MUL32`/`MUL64`) of
/// the paper's suite.
pub fn array_multiply(g: &mut Mig, a: &[Signal], b: &[Signal]) -> Word {
    let (n, m) = (a.len(), b.len());
    let mut acc: Word = vec![Signal::ZERO; n + m];
    for (j, &bj) in b.iter().enumerate() {
        let row: Word = a.iter().map(|&ai| g.add_and(ai, bj)).collect();
        let (sum, carry) = ripple_add(g, &acc[j..j + n], &row, Signal::ZERO);
        acc[j..j + n].copy_from_slice(&sum);
        // Propagate the carry into the upper accumulator bits.
        let mut c = carry;
        for slot in acc.iter_mut().skip(j + n) {
            let (s, c2) = g.add_half_adder(*slot, c);
            *slot = s;
            c = c2;
        }
    }
    acc
}

/// Wallace-tree multiplication (3:2 carry-save reduction, final ripple
/// adder); same function as [`array_multiply`] with much smaller depth.
pub fn wallace_multiply(g: &mut Mig, a: &[Signal], b: &[Signal]) -> Word {
    let width = a.len() + b.len();
    // Column-wise partial products.
    let mut columns: Vec<Vec<Signal>> = vec![Vec::new(); width];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = g.add_and(ai, bj);
            columns[i + j].push(pp);
        }
    }
    // 3:2 reduction until every column has ≤ 2 entries.
    loop {
        let max = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max <= 2 {
            break;
        }
        let mut next: Vec<Vec<Signal>> = vec![Vec::new(); width];
        for (c, col) in columns.iter().enumerate() {
            let mut k = 0;
            while col.len() - k >= 3 {
                let (s, cy) = g.add_full_adder(col[k], col[k + 1], col[k + 2]);
                next[c].push(s);
                if c + 1 < width {
                    next[c + 1].push(cy);
                }
                k += 3;
            }
            if col.len() - k == 2 {
                let (s, cy) = g.add_half_adder(col[k], col[k + 1]);
                next[c].push(s);
                if c + 1 < width {
                    next[c + 1].push(cy);
                }
                k += 2;
            }
            for &rest in &col[k..] {
                next[c].push(rest);
            }
        }
        columns = next;
    }
    // Final carry-propagate add of the two remaining rows.
    let row0: Word = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(Signal::ZERO))
        .collect();
    let row1: Word = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(Signal::ZERO))
        .collect();
    ripple_add(g, &row0, &row1, Signal::ZERO).0
}

/// Bitwise word XOR.
pub fn word_xor(g: &mut Mig, a: &[Signal], b: &[Signal]) -> Word {
    a.iter().zip(b).map(|(&x, &y)| g.add_xor(x, y)).collect()
}

/// Word-wide 2:1 multiplexer.
pub fn word_mux(g: &mut Mig, sel: Signal, then_w: &[Signal], else_w: &[Signal]) -> Word {
    then_w
        .iter()
        .zip(else_w)
        .map(|(&t, &e)| g.add_mux(sel, t, e))
        .collect()
}

/// Unsigned equality comparator.
pub fn word_eq(g: &mut Mig, a: &[Signal], b: &[Signal]) -> Signal {
    let bits: Word = a.iter().zip(b).map(|(&x, &y)| g.add_xnor(x, y)).collect();
    g.add_and_n(&bits)
}

/// Unsigned `a < b` comparator (via subtraction borrow).
pub fn word_lt(g: &mut Mig, a: &[Signal], b: &[Signal]) -> Signal {
    let (_, no_borrow) = ripple_sub(g, a, b);
    !no_borrow
}

/// Population count: number of set bits, as a ⌈log2(n+1)⌉-bit word.
pub fn popcount(g: &mut Mig, bits: &[Signal]) -> Word {
    match bits.len() {
        0 => vec![Signal::ZERO],
        1 => vec![bits[0]],
        _ => {
            // Carry-save tree of full adders over three-way splits.
            let third = bits.len() / 3;
            let (lo, rest) = bits.split_at(third.max(1));
            let (mid, hi) = rest.split_at(rest.len().div_ceil(2).max(1));
            let a = popcount(g, lo);
            let b = popcount(g, mid);
            let c = popcount(g, hi);
            let ab = add_words_var(g, &a, &b);
            add_words_var(g, &ab, &c)
        }
    }
}

/// Adds two words of possibly different widths, growing the result by
/// one bit to hold the final carry.
pub fn add_words_var(g: &mut Mig, a: &[Signal], b: &[Signal]) -> Word {
    let width = a.len().max(b.len());
    let pad = |w: &[Signal]| -> Word {
        let mut v = w.to_vec();
        v.resize(width, Signal::ZERO);
        v
    };
    let (mut sum, carry) = ripple_add(g, &pad(a), &pad(b), Signal::ZERO);
    sum.push(carry);
    sum
}

/// Logical barrel shifter (left shift by a variable amount, zero fill).
pub fn barrel_shift_left(g: &mut Mig, value: &[Signal], amount: &[Signal]) -> Word {
    let mut cur: Word = value.to_vec();
    for (k, &sel) in amount.iter().enumerate() {
        let shift = 1usize << k;
        let shifted: Word = (0..cur.len())
            .map(|i| {
                if i >= shift {
                    cur[i - shift]
                } else {
                    Signal::ZERO
                }
            })
            .collect();
        cur = word_mux(g, sel, &shifted, &cur);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Drives a two-operand word circuit and checks it against `expect`.
    fn check_binop(
        width: usize,
        out_width: usize,
        build: impl FnOnce(&mut Mig, &[Signal], &[Signal]) -> Word,
        expect: impl Fn(u64, u64) -> u64,
        seed: u64,
    ) {
        let mut g = Mig::new();
        let a = g.add_inputs("a", width);
        let b = g.add_inputs("b", width);
        let out = build(&mut g, &a, &b);
        assert!(out.len() >= out_width);
        for (i, &s) in out.iter().enumerate() {
            g.add_output(format!("o{i}"), s);
        }
        let sim = Simulator::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let av = rng.gen::<u64>() & ((1 << width) - 1);
            let bv = rng.gen::<u64>() & ((1 << width) - 1);
            let mut bits = Vec::new();
            for i in 0..width {
                bits.push(av >> i & 1 != 0);
            }
            for i in 0..width {
                bits.push(bv >> i & 1 != 0);
            }
            let got: u64 = sim
                .eval(&bits)
                .iter()
                .take(out_width)
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            let mask = if out_width >= 64 {
                !0
            } else {
                (1u64 << out_width) - 1
            };
            assert_eq!(got, expect(av, bv) & mask, "a={av}, b={bv}");
        }
    }

    #[test]
    fn ripple_add_is_addition() {
        check_binop(
            8,
            9,
            |g, a, b| {
                let (mut s, c) = ripple_add(g, a, b, Signal::ZERO);
                s.push(c);
                s
            },
            |a, b| a + b,
            1,
        );
    }

    #[test]
    fn kogge_stone_matches_ripple() {
        check_binop(
            10,
            11,
            |g, a, b| {
                let (mut s, c) = kogge_stone_add(g, a, b, Signal::ZERO);
                s.push(c);
                s
            },
            |a, b| a + b,
            2,
        );
    }

    #[test]
    fn kogge_stone_with_carry_in() {
        check_binop(
            6,
            7,
            |g, a, b| {
                let (mut s, c) = kogge_stone_add(g, a, b, Signal::ONE);
                s.push(c);
                s
            },
            |a, b| a + b + 1,
            3,
        );
    }

    #[test]
    fn kogge_stone_is_shallower_than_ripple() {
        let depth_of = |ks: bool| {
            let mut g = Mig::new();
            let a = g.add_inputs("a", 32);
            let b = g.add_inputs("b", 32);
            let (s, c) = if ks {
                kogge_stone_add(&mut g, &a, &b, Signal::ZERO)
            } else {
                ripple_add(&mut g, &a, &b, Signal::ZERO)
            };
            for (i, &bit) in s.iter().enumerate() {
                g.add_output(format!("s{i}"), bit);
            }
            g.add_output("c", c);
            g.depth()
        };
        assert!(depth_of(true) < depth_of(false) / 2);
    }

    #[test]
    fn subtraction_and_comparison() {
        check_binop(
            8,
            8,
            |g, a, b| ripple_sub(g, a, b).0,
            |a, b| a.wrapping_sub(b),
            4,
        );
        check_binop(
            8,
            1,
            |g, a, b| vec![word_lt(g, a, b)],
            |a, b| (a < b) as u64,
            5,
        );
        check_binop(
            8,
            1,
            |g, a, b| vec![word_eq(g, a, b)],
            |a, b| (a == b) as u64,
            6,
        );
    }

    #[test]
    fn array_multiplier_multiplies() {
        check_binop(6, 12, array_multiply, |a, b| a * b, 7);
    }

    #[test]
    fn wallace_multiplier_multiplies() {
        check_binop(6, 12, wallace_multiply, |a, b| a * b, 8);
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let depth_of = |wallace: bool| {
            let mut g = Mig::new();
            let a = g.add_inputs("a", 16);
            let b = g.add_inputs("b", 16);
            let p = if wallace {
                wallace_multiply(&mut g, &a, &b)
            } else {
                array_multiply(&mut g, &a, &b)
            };
            for (i, &bit) in p.iter().enumerate() {
                g.add_output(format!("p{i}"), bit);
            }
            g.depth()
        };
        assert!(depth_of(true) < depth_of(false));
    }

    #[test]
    fn popcount_counts() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 11);
        let c = popcount(&mut g, &x);
        for (i, &s) in c.iter().enumerate() {
            g.add_output(format!("c{i}"), s);
        }
        let sim = Simulator::new(&g);
        for p in 0..1u32 << 11 {
            let bits: Vec<bool> = (0..11).map(|i| p >> i & 1 != 0).collect();
            let got: u32 = sim
                .eval(&bits)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u32) << i)
                .sum();
            assert_eq!(got, p.count_ones(), "p={p:011b}");
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let mut g = Mig::new();
        let v = g.add_inputs("v", 8);
        let s = g.add_inputs("s", 3);
        let out = barrel_shift_left(&mut g, &v, &s);
        for (i, &bit) in out.iter().enumerate() {
            g.add_output(format!("o{i}"), bit);
        }
        let sim = Simulator::new(&g);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let vv = rng.gen::<u64>() & 0xFF;
            let sv = rng.gen::<u64>() & 0x7;
            let mut bits = Vec::new();
            for i in 0..8 {
                bits.push(vv >> i & 1 != 0);
            }
            for i in 0..3 {
                bits.push(sv >> i & 1 != 0);
            }
            let got: u64 = sim
                .eval(&bits)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            assert_eq!(got, (vv << sv) & 0xFF);
        }
    }

    #[test]
    fn word_mux_and_xor() {
        check_binop(8, 8, word_xor, |a, b| a ^ b, 10);
        let mut g = Mig::new();
        let sel = g.add_input("sel");
        let a = g.add_inputs("a", 4);
        let b = g.add_inputs("b", 4);
        let m = word_mux(&mut g, sel, &a, &b);
        for (i, &s) in m.iter().enumerate() {
            g.add_output(format!("m{i}"), s);
        }
        let sim = Simulator::new(&g);
        let mut bits = vec![true]; // sel = 1 → a
        bits.extend([true, false, true, false]);
        bits.extend([false, true, false, true]);
        assert_eq!(sim.eval(&bits), vec![true, false, true, false]);
        bits[0] = false;
        assert_eq!(sim.eval(&bits), vec![false, true, false, true]);
    }
}
