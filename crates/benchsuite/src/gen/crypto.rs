//! Cipher-shaped benchmarks: an S-box Feistel network (the `DES_AREA`
//! profile — wide, S-box dominated, moderate depth) and an ARX mixing
//! pipeline (the `REVX` profile — narrow and very deep).

use mig::{Mig, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::words::{ripple_add, word_xor, Word};

/// Synthesizes an arbitrary `k`-input, `m`-output truth table as a
/// minterm sum-of-products over a shared one-hot decoder (the generic
/// random-logic block S-boxes are made of).
fn synthesize_table(g: &mut Mig, inputs: &[Signal], table: &[u64], out_bits: usize) -> Word {
    assert_eq!(table.len(), 1 << inputs.len());
    let minterms = g.add_decoder(inputs);
    (0..out_bits)
        .map(|o| {
            let selected: Word = minterms
                .iter()
                .zip(table)
                .filter(|(_, &row)| row >> o & 1 != 0)
                .map(|(&m, _)| m)
                .collect();
            g.add_or_n(&selected)
        })
        .collect()
}

/// Fixed pseudo-random 6→4 S-box tables (deterministic: seeded).
fn sbox_tables(count: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..64).map(|_| rng.gen_range(0..16u64)).collect())
        .collect()
}

/// A DES-like Feistel network: `rounds` rounds over a 64-bit block with
/// per-round 48-bit key inputs, eight fixed 6→4 S-boxes and a fixed
/// permutation. Functionally faithful to the DES *structure* (expansion
/// is a simple duplication pattern; S-boxes and P-permutation are seeded
/// pseudo-random constants — the synthesis algorithms only see the
/// shape).
pub fn des_like(rounds: usize) -> Mig {
    let mut g = Mig::with_name(format!("DES{rounds}"));
    let block = g.add_inputs("x", 64);
    let mut left: Word = block[..32].to_vec();
    let mut right: Word = block[32..].to_vec();

    let sboxes = sbox_tables(8, 0xDE5);
    let mut perm_rng = StdRng::seed_from_u64(0xBEEF);
    let mut perm: Vec<usize> = (0..32).collect();
    // Fisher–Yates with the seeded RNG: one fixed P-permutation.
    for i in (1..32).rev() {
        let j = perm_rng.gen_range(0..=i);
        perm.swap(i, j);
    }

    for r in 0..rounds {
        let key = g.add_inputs(&format!("k{r}_"), 48);
        // Expansion: 32 → 48 by duplicating every 4th bit's neighbors
        // (structure-faithful stand-in for the DES E-table).
        let expanded: Word = (0..48).map(|i| right[(i * 2 / 3) % 32]).collect();
        let mixed = word_xor(&mut g, &expanded, &key);
        // Eight 6→4 S-boxes.
        let mut f_out: Word = Vec::with_capacity(32);
        for (s, table) in sboxes.iter().enumerate() {
            let chunk = &mixed[s * 6..s * 6 + 6];
            f_out.extend(synthesize_table(&mut g, chunk, table, 4));
        }
        // P-permutation, then Feistel swap.
        let permuted: Word = perm.iter().map(|&i| f_out[i]).collect();
        let new_right = word_xor(&mut g, &left, &permuted);
        left = right;
        right = new_right;
    }
    for (i, &s) in left.iter().chain(right.iter()).enumerate() {
        g.add_output(format!("y{i}"), s);
    }
    g
}

/// ARX-style mixing pipeline over two `width`-bit lanes:
/// `rounds` iterations of `x ^= y; y += x>>>(fixed rotate via wiring)` —
/// additions chain into a very deep, narrow circuit (the `REVX`
/// profile: depth in the hundreds). All rounds are invertible, hence
/// the name.
pub fn revx(width: usize, rounds: usize) -> Mig {
    let mut g = Mig::with_name(format!("REVX{width}x{rounds}"));
    let mut x: Word = g.add_inputs("x", width);
    let mut y: Word = g.add_inputs("y", width);
    for r in 0..rounds {
        let rot = (5 + 7 * r) % width;
        let y_rot: Word = (0..width).map(|i| y[(i + rot) % width]).collect();
        x = word_xor(&mut g, &x, &y_rot);
        let (sum, _) = ripple_add(&mut g, &y, &x, Signal::ZERO);
        y = sum;
    }
    for (i, &s) in x.iter().enumerate() {
        g.add_output(format!("x{i}"), s);
    }
    for (i, &s) in y.iter().enumerate() {
        g.add_output(format!("y{i}"), s);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;

    /// Software model of `revx` for cross-checking.
    fn revx_ref(width: usize, rounds: usize, mut x: u64, mut y: u64) -> (u64, u64) {
        let mask = if width >= 64 { !0 } else { (1u64 << width) - 1 };
        for r in 0..rounds {
            let rot = (5 + 7 * r) % width;
            let y_rot = ((y >> rot) | (y << (width - rot).min(63))) & mask;
            let y_rot = if rot == 0 { y } else { y_rot };
            x = (x ^ y_rot) & mask;
            y = (y + x) & mask;
        }
        (x, y)
    }

    #[test]
    fn revx_matches_reference() {
        let (width, rounds) = (8, 5);
        let g = revx(width, rounds);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..40 {
            let xv = rng.gen::<u64>() & 0xFF;
            let yv = rng.gen::<u64>() & 0xFF;
            let mut bits = Vec::new();
            for i in 0..width {
                bits.push(xv >> i & 1 != 0);
            }
            for i in 0..width {
                bits.push(yv >> i & 1 != 0);
            }
            let out = Simulator::new(&g).eval(&bits);
            let gx: u64 = out[..width]
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            let gy: u64 = out[width..]
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            assert_eq!((gx, gy), revx_ref(width, rounds, xv, yv));
        }
    }

    #[test]
    fn revx_is_very_deep() {
        let g = revx(16, 12);
        assert!(g.depth() > 100, "depth {}", g.depth());
    }

    #[test]
    fn des_structure_is_a_feistel() {
        // One-round Feistel: output left half must equal input right
        // half verbatim.
        let g = des_like(1);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let bits: Vec<bool> = (0..64 + 48).map(|_| rng.gen()).collect();
            let out = Simulator::new(&g).eval(&bits);
            for i in 0..32 {
                assert_eq!(out[i], bits[32 + i], "left out = right in (bit {i})");
            }
        }
    }

    #[test]
    fn des_keys_matter() {
        let g = des_like(2);
        let mut base: Vec<bool> = vec![false; 64 + 96];
        base[0] = true;
        let out1 = Simulator::new(&g).eval(&base);
        let mut flipped = base.clone();
        flipped[64] = true; // flip one key bit of round 0
        let out2 = Simulator::new(&g).eval(&flipped);
        assert_ne!(out1, out2, "key bits must influence the output");
    }

    #[test]
    fn des_profile_is_wide_and_moderately_deep() {
        // The paper's DES_AREA row: size 4187, depth 22 — S-box SOP
        // logic dominates the area with modest depth per round.
        let g = des_like(2);
        assert!(g.gate_count() > 2000, "size {}", g.gate_count());
        let d = g.depth();
        assert!((10..60).contains(&d), "depth {d}");
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
}
