//! Adder benchmarks: ripple-carry (deep) and Kogge–Stone (shallow).

use mig::{Mig, Signal};

use crate::words;

/// `width`-bit ripple-carry adder with carry-in and carry-out.
pub fn ripple_adder(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("ADD{width}R"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let cin = g.add_input("cin");
    let (sum, cout) = words::ripple_add(&mut g, &a, &b, cin);
    for (i, &s) in sum.iter().enumerate() {
        g.add_output(format!("s{i}"), s);
    }
    g.add_output("cout", cout);
    g
}

/// `width`-bit Kogge–Stone parallel-prefix adder.
pub fn kogge_stone_adder(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("ADD{width}KS"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let cin = g.add_input("cin");
    let (sum, cout) = words::kogge_stone_add(&mut g, &a, &b, cin);
    for (i, &s) in sum.iter().enumerate() {
        g.add_output(format!("s{i}"), s);
    }
    g.add_output("cout", cout);
    g
}

/// Adds `lanes` independent `width`-bit vectors pairwise into one sum —
/// a carry-save adder tree (the vector-reduction kernel of DSP blocks).
pub fn adder_tree(width: usize, lanes: usize) -> Mig {
    let mut g = Mig::with_name(format!("ADDTREE{width}x{lanes}"));
    let mut layer: Vec<Vec<Signal>> = (0..lanes)
        .map(|l| g.add_inputs(&format!("v{l}_"), width))
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut iter = layer.chunks(2);
        for pair in &mut iter {
            match pair {
                [x, y] => next.push(words::add_words_var(&mut g, x, y)),
                [x] => next.push(x.clone()),
                _ => unreachable!(),
            }
        }
        layer = next;
    }
    for (i, &s) in layer[0].iter().enumerate() {
        g.add_output(format!("s{i}"), s);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn drive(g: &Mig, values: &[(usize, u64)]) -> u64 {
        let mut bits = Vec::new();
        for &(w, v) in values {
            for i in 0..w {
                bits.push(v >> i & 1 != 0);
            }
        }
        Simulator::new(g)
            .eval(&bits)
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u64) << i)
            .sum()
    }

    #[test]
    fn ripple_adder_adds() {
        let g = ripple_adder(8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let (a, b) = (rng.gen::<u64>() & 0xFF, rng.gen::<u64>() & 0xFF);
            let cin = rng.gen::<bool>() as u64;
            let got = drive(&g, &[(8, a), (8, b), (1, cin)]);
            assert_eq!(got, a + b + cin);
        }
    }

    #[test]
    fn kogge_stone_adder_adds() {
        let g = kogge_stone_adder(12);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let (a, b) = (rng.gen::<u64>() & 0xFFF, rng.gen::<u64>() & 0xFFF);
            let got = drive(&g, &[(12, a), (12, b), (1, 0)]);
            assert_eq!(got, a + b);
        }
    }

    #[test]
    fn adder_tree_sums_lanes() {
        let g = adder_tree(6, 5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let vals: Vec<u64> = (0..5).map(|_| rng.gen::<u64>() & 0x3F).collect();
            let inputs: Vec<(usize, u64)> = vals.iter().map(|&v| (6, v)).collect();
            let got = drive(&g, &inputs);
            assert_eq!(got, vals.iter().sum::<u64>());
        }
    }

    #[test]
    fn depth_profiles() {
        assert!(ripple_adder(32).depth() > 2 * kogge_stone_adder(32).depth());
    }
}
