//! Multiplier benchmarks — the `MUL32` / `MUL64` profile of the paper's
//! suite (large and deep).

use mig::Mig;

use crate::words;

/// `width × width` unsigned array multiplier (carry-propagate rows,
/// depth linear in the width).
pub fn array_multiplier(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("MUL{width}"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let p = words::array_multiply(&mut g, &a, &b);
    for (i, &s) in p.iter().enumerate() {
        g.add_output(format!("p{i}"), s);
    }
    g
}

/// `width × width` Wallace-tree multiplier (logarithmic reduction
/// depth, final ripple adder).
pub fn wallace_multiplier(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("MUL{width}W"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let p = words::wallace_multiply(&mut g, &a, &b);
    for (i, &s) in p.iter().enumerate() {
        g.add_output(format!("p{i}"), s);
    }
    g
}

/// Squarer: `x²` via the array multiplier on a shared operand — half
/// the inputs, same depth profile.
pub fn squarer(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("SQR{width}"));
    let x = g.add_inputs("x", width);
    let p = words::array_multiply(&mut g, &x.clone(), &x);
    for (i, &s) in p.iter().enumerate() {
        g.add_output(format!("p{i}"), s);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn product(g: &Mig, width: usize, a: u64, b: Option<u64>) -> u64 {
        let mut bits = Vec::new();
        for i in 0..width {
            bits.push(a >> i & 1 != 0);
        }
        if let Some(b) = b {
            for i in 0..width {
                bits.push(b >> i & 1 != 0);
            }
        }
        Simulator::new(g)
            .eval(&bits)
            .iter()
            .enumerate()
            .map(|(i, &bit)| (bit as u64) << i)
            .sum()
    }

    #[test]
    fn array_multiplier_is_correct() {
        let g = array_multiplier(7);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let (a, b) = (rng.gen::<u64>() & 0x7F, rng.gen::<u64>() & 0x7F);
            assert_eq!(product(&g, 7, a, Some(b)), a * b);
        }
    }

    #[test]
    fn wallace_multiplier_is_correct() {
        let g = wallace_multiplier(7);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let (a, b) = (rng.gen::<u64>() & 0x7F, rng.gen::<u64>() & 0x7F);
            assert_eq!(product(&g, 7, a, Some(b)), a * b);
        }
    }

    #[test]
    fn squarer_squares() {
        let g = squarer(8);
        for a in [0u64, 1, 7, 100, 255] {
            assert_eq!(product(&g, 8, a, None), a * a);
        }
    }

    #[test]
    fn mul32_profile_is_large_and_deep() {
        // The paper's MUL32 row: size 9097, depth 36 — our array
        // multiplier lands in the same regime (thousands of gates,
        // tens of levels).
        let g = array_multiplier(32);
        assert!(g.gate_count() >= 3500, "size {}", g.gate_count());
        assert!(g.depth() > 30, "depth {}", g.depth());
    }
}
