//! Circuit generators: one function per benchmark family.
//!
//! Every generator returns a self-contained [`mig::Mig`] whose function
//! is verified in its module's tests against a plain-software reference
//! model. The registry (`crate::registry`) instantiates them with the
//! parameters that reproduce the paper's 37-benchmark profile.

pub mod adders;
pub mod coding;
pub mod control;
pub mod crypto;
pub mod datapath;
pub mod misc;
pub mod multipliers;
