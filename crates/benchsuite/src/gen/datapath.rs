//! Datapath benchmarks: the unrolled differential-equation solver
//! (`DIFFEQ1` profile — huge and extremely deep), multiply-accumulate
//! and a small ALU.

use mig::{Mig, Signal};

use crate::words::{array_multiply, ripple_add, ripple_sub, word_mux, word_xor, Word};

fn truncate(word: Word, width: usize) -> Word {
    let mut w = word;
    w.truncate(width);
    w
}

/// The classic HLS differential-equation kernel, `steps` Euler
/// iterations unrolled combinationally over `width`-bit words:
///
/// ```text
/// u' = u − (3·x·u·dt) − (3·y·dt)
/// y' = y + u·dt
/// x' = x + dt
/// ```
///
/// Every iteration contains three array multiplications whose depth
/// chains, matching the paper's `DIFFEQ1` profile (size 17726,
/// depth 219).
pub fn diffeq(width: usize, steps: usize) -> Mig {
    let mut g = Mig::with_name(format!("DIFFEQ{width}x{steps}"));
    let mut x = g.add_inputs("x", width);
    let mut y = g.add_inputs("y", width);
    let mut u = g.add_inputs("u", width);
    let dt = g.add_inputs("dt", width);

    // 3·w = w + (w << 1), truncated to width.
    fn triple(g: &mut Mig, w: &[Signal]) -> Word {
        let mut doubled: Word = vec![Signal::ZERO];
        doubled.extend_from_slice(&w[..w.len() - 1]);
        ripple_add(g, w, &doubled, Signal::ZERO).0
    }

    for _ in 0..steps {
        let xu = truncate(array_multiply(&mut g, &x, &u), width);
        let xu_dt = truncate(array_multiply(&mut g, &xu, &dt), width);
        let y_dt = truncate(array_multiply(&mut g, &y, &dt), width);
        let u_dt = truncate(array_multiply(&mut g, &u, &dt), width);
        let t1 = triple(&mut g, &xu_dt);
        let t2 = triple(&mut g, &y_dt);
        let (d1, _) = ripple_sub(&mut g, &u, &t1);
        let (new_u, _) = ripple_sub(&mut g, &d1, &t2);
        let (new_y, _) = ripple_add(&mut g, &y, &u_dt, Signal::ZERO);
        let (new_x, _) = ripple_add(&mut g, &x, &dt, Signal::ZERO);
        u = new_u;
        y = new_y;
        x = new_x;
    }
    for (i, &s) in u.iter().enumerate() {
        g.add_output(format!("u{i}"), s);
    }
    for (i, &s) in y.iter().enumerate() {
        g.add_output(format!("y{i}"), s);
    }
    for (i, &s) in x.iter().enumerate() {
        g.add_output(format!("x{i}"), s);
    }
    g
}

/// Multiply-accumulate: `a·b + c` with a full-width product.
pub fn mac(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("MAC{width}"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let c = g.add_inputs("c", 2 * width);
    let p = array_multiply(&mut g, &a, &b);
    let (sum, carry) = ripple_add(&mut g, &p, &c, Signal::ZERO);
    for (i, &s) in sum.iter().enumerate() {
        g.add_output(format!("s{i}"), s);
    }
    g.add_output("cout", carry);
    g
}

/// A 4-operation ALU (`00` add, `01` subtract, `10` XOR, `11` AND) over
/// `width`-bit operands.
pub fn alu(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("ALU{width}"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let op = g.add_inputs("op", 2);
    let (add, _) = ripple_add(&mut g, &a, &b, Signal::ZERO);
    let (sub, _) = ripple_sub(&mut g, &a, &b);
    let xor = word_xor(&mut g, &a, &b);
    let and: Word = a.iter().zip(&b).map(|(&x, &y)| g.add_and(x, y)).collect();
    let arith = word_mux(&mut g, op[0], &sub, &add);
    let logic = word_mux(&mut g, op[0], &and, &xor);
    let out = word_mux(&mut g, op[1], &logic, &arith);
    for (i, &s) in out.iter().enumerate() {
        g.add_output(format!("r{i}"), s);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pack(values: &[(usize, u64)]) -> Vec<bool> {
        let mut bits = Vec::new();
        for &(w, v) in values {
            for i in 0..w {
                bits.push(v >> i & 1 != 0);
            }
        }
        bits
    }

    fn unpack(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    /// Software model of one diffeq step (all ops mod 2^width).
    fn diffeq_ref(
        width: usize,
        steps: usize,
        mut x: u64,
        mut y: u64,
        mut u: u64,
        dt: u64,
    ) -> (u64, u64, u64) {
        let mask = (1u64 << width) - 1;
        for _ in 0..steps {
            let xu = x.wrapping_mul(u) & mask;
            let xu_dt = xu.wrapping_mul(dt) & mask;
            let y_dt = y.wrapping_mul(dt) & mask;
            let u_dt = u.wrapping_mul(dt) & mask;
            let t1 = xu_dt.wrapping_mul(3) & mask;
            let t2 = y_dt.wrapping_mul(3) & mask;
            let new_u = u.wrapping_sub(t1).wrapping_sub(t2) & mask;
            let new_y = y.wrapping_add(u_dt) & mask;
            let new_x = x.wrapping_add(dt) & mask;
            u = new_u;
            y = new_y;
            x = new_x;
        }
        (u, y, x)
    }

    #[test]
    fn diffeq_matches_software_model() {
        let (width, steps) = (6, 2);
        let g = diffeq(width, steps);
        let sim = Simulator::new(&g);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..25 {
            let m = (1u64 << width) - 1;
            let (x, y, u, dt) = (
                rng.gen::<u64>() & m,
                rng.gen::<u64>() & m,
                rng.gen::<u64>() & m,
                rng.gen::<u64>() & m,
            );
            let bits = pack(&[(width, x), (width, y), (width, u), (width, dt)]);
            let out = sim.eval(&bits);
            let gu = unpack(&out[..width]);
            let gy = unpack(&out[width..2 * width]);
            let gx = unpack(&out[2 * width..]);
            assert_eq!((gu, gy, gx), diffeq_ref(width, steps, x, y, u, dt));
        }
    }

    #[test]
    fn diffeq_profile_is_huge_and_deep() {
        // The paper's DIFFEQ1 row: size 17726, depth 219.
        let g = diffeq(16, 3);
        assert!(g.gate_count() > 8000, "size {}", g.gate_count());
        assert!(g.depth() > 150, "depth {}", g.depth());
    }

    #[test]
    fn mac_accumulates() {
        let g = mac(6);
        let sim = Simulator::new(&g);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..40 {
            let a = rng.gen::<u64>() & 0x3F;
            let b = rng.gen::<u64>() & 0x3F;
            let c = rng.gen::<u64>() & 0xFFF;
            let bits = pack(&[(6, a), (6, b), (12, c)]);
            let out = sim.eval(&bits);
            assert_eq!(unpack(&out), a * b + c);
        }
    }

    #[test]
    fn alu_implements_all_ops() {
        let g = alu(8);
        let sim = Simulator::new(&g);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..60 {
            let a = rng.gen::<u64>() & 0xFF;
            let b = rng.gen::<u64>() & 0xFF;
            let op = rng.gen_range(0..4u64);
            let bits = pack(&[(8, a), (8, b), (2, op)]);
            let out = unpack(&sim.eval(&bits));
            let expect = match op {
                0 => a.wrapping_add(b) & 0xFF,
                1 => a.wrapping_sub(b) & 0xFF,
                2 => a ^ b,
                _ => a & b,
            };
            assert_eq!(out, expect, "op {op}, a {a}, b {b}");
        }
    }
}
