//! Control-logic benchmarks.
//!
//! The MCNC control circuits of the paper's suite (`SASC`, a simple
//! asynchronous serial controller, and friends) are unstructured
//! decoder/mux logic; their netlist files are not available offline, so
//! these generators reconstruct the *profile* the algorithms see: a
//! realistic mix of state decoding, condition evaluation and output
//! muxing tuned to the published (size, depth) operating point, plus
//! seeded random MIGs for the suite's long tail (see DESIGN.md,
//! substitution 1).

use mig::{Mig, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A controller-shaped circuit: `state_bits` are decoded one-hot,
/// combined with `cond_bits` condition inputs through two levels of
/// AND/OR cubes, and fanned out to `outputs` control lines.
///
/// Produces wide, shallow logic (depth ~6–8) with heavy fan-out on the
/// decoded state lines — exactly the stress profile the fan-out
/// restriction pass exists for.
pub fn controller(state_bits: usize, cond_bits: usize, outputs: usize, seed: u64) -> Mig {
    let mut g = Mig::with_name(format!("CTRL{state_bits}x{cond_bits}"));
    let state = g.add_inputs("st", state_bits);
    let cond = g.add_inputs("c", cond_bits);
    let states = g.add_decoder(&state);
    let mut rng = StdRng::seed_from_u64(seed);

    for o in 0..outputs {
        // Each control line: OR of 2–5 cubes, each cube = one decoded
        // state AND 1–3 (possibly negated) conditions.
        let n_cubes = rng.gen_range(2..=5);
        let mut cubes: Vec<Signal> = Vec::with_capacity(n_cubes);
        for _ in 0..n_cubes {
            let st = states[rng.gen_range(0..states.len())];
            let mut cube = st;
            for _ in 0..rng.gen_range(1..=3usize) {
                let c = cond[rng.gen_range(0..cond.len())].complement_if(rng.gen());
                cube = g.add_and(cube, c);
            }
            cubes.push(cube);
        }
        let line = g.add_or_n(&cubes);
        g.add_output(format!("ctl{o}"), line.complement_if(rng.gen()));
    }
    g
}

/// The `SASC` stand-in: a controller tuned to the paper's published
/// operating point (size 622, depth 6).
pub fn sasc_like() -> Mig {
    let mut g = controller(5, 12, 130, 0x5A5C);
    g.set_name("SASC");
    g
}

/// Seeded random MIG with a named profile — the suite's long tail and
/// the large-size end of Fig 5.
pub fn random_profile(
    name: &str,
    inputs: usize,
    outputs: usize,
    gates: usize,
    depth: u32,
    seed: u64,
) -> Mig {
    let mut g = mig::random_mig(mig::RandomMigConfig {
        inputs,
        outputs,
        gates,
        depth,
        seed,
    });
    g.set_name(name);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::FanoutHistogram;

    #[test]
    fn controller_is_wide_and_shallow() {
        let g = controller(5, 12, 130, 1);
        assert!(g.depth() <= 12, "depth {}", g.depth());
        assert!(g.output_count() == 130);
        // Decoded state lines must have heavy fan-out.
        let h = FanoutHistogram::new(&g);
        assert!(h.max_fanout() > 5, "max fan-out {}", h.max_fanout());
    }

    #[test]
    fn sasc_profile_matches_the_paper_regime() {
        let g = sasc_like();
        // Paper: size 622, depth 6. Accept the same order of magnitude.
        let size = g.gate_count();
        assert!(
            (300..1300).contains(&size),
            "SASC stand-in size {size} out of regime"
        );
        assert!(g.depth() <= 12, "depth {}", g.depth());
    }

    #[test]
    fn controller_is_deterministic() {
        let a = controller(4, 8, 40, 7);
        let b = controller(4, 8, 40, 7);
        assert_eq!(mig::write_mig(&a), mig::write_mig(&b));
    }

    #[test]
    fn random_profile_carries_its_name() {
        let g = random_profile("X1", 10, 4, 100, 8, 3);
        assert_eq!(g.name(), "X1");
        assert_eq!(g.depth(), 8);
    }
}
