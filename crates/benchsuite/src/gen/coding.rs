//! Error-coding benchmarks: Hamming encode/correct rounds, combinational
//! CRC, parity trees and Gray-code converters.

use mig::{Mig, Signal};

use crate::words::{word_xor, Word};

/// Hamming(15,11) parity positions: bit i of the codeword is a parity
/// bit iff `i + 1` is a power of two.
fn is_parity_position(i: usize) -> bool {
    (i + 1).is_power_of_two()
}

/// Encodes 11 data bits into a 15-bit Hamming codeword (even parity).
fn hamming_encode(g: &mut Mig, data: &[Signal]) -> Word {
    assert_eq!(data.len(), 11, "Hamming(15,11) takes 11 data bits");
    let mut code: Word = vec![Signal::ZERO; 15];
    let mut d = data.iter();
    for (i, slot) in code.iter_mut().enumerate() {
        if !is_parity_position(i) {
            *slot = *d.next().expect("11 data positions");
        }
    }
    for p in 0..4 {
        let mask = 1usize << p;
        let covered: Word = (0..15)
            .filter(|&i| (i + 1) & mask != 0 && !is_parity_position(i))
            .map(|i| code[i])
            .collect();
        code[mask - 1] = g.add_xor_n(&covered);
    }
    code
}

/// Computes the 4-bit syndrome of a 15-bit word and corrects the single
/// flipped bit it points at; returns the corrected 11 data bits.
fn hamming_correct(g: &mut Mig, code: &[Signal]) -> Word {
    assert_eq!(code.len(), 15);
    let syndrome: Word = (0..4)
        .map(|p| {
            let mask = 1usize << p;
            let covered: Word = (0..15)
                .filter(|&i| (i + 1) & mask != 0)
                .map(|i| code[i])
                .collect();
            g.add_xor_n(&covered)
        })
        .collect();
    // flip[i] = (syndrome == i + 1)
    let mut corrected = Vec::with_capacity(11);
    for (i, &code_bit) in code.iter().enumerate() {
        if is_parity_position(i) {
            continue;
        }
        let target = i + 1;
        let bits: Word = (0..4)
            .map(|p| syndrome[p].complement_if(target >> p & 1 == 0))
            .collect();
        let flip = g.add_and_n(&bits);
        corrected.push(g.add_xor(code_bit, flip));
    }
    corrected
}

/// Iterated Hamming pipeline: `rounds` of encode → XOR with a per-round
/// 15-bit noise input → correct. With a single flipped bit per round the
/// output equals the input data — a deep, realistic ECC datapath (the
/// paper's `HAMMING` row is depth 61; four rounds land in that regime).
pub fn hamming_rounds(rounds: usize) -> Mig {
    let mut g = Mig::with_name(format!("HAMMING{rounds}"));
    let mut data = g.add_inputs("d", 11);
    for r in 0..rounds {
        let noise = g.add_inputs(&format!("n{r}_"), 15);
        let code = hamming_encode(&mut g, &data);
        let corrupted = word_xor(&mut g, &code, &noise);
        data = hamming_correct(&mut g, &corrupted);
    }
    for (i, &s) in data.iter().enumerate() {
        g.add_output(format!("o{i}"), s);
    }
    g
}

/// Bit-serial combinational CRC over `message_bits` bits with the given
/// polynomial (e.g. `0x07` for CRC-8-CCITT, width 8) — a long XOR chain,
/// the classic deep-and-narrow benchmark shape.
pub fn crc(message_bits: usize, crc_width: usize, poly: u64) -> Mig {
    let mut g = Mig::with_name(format!("CRC{crc_width}x{message_bits}"));
    let msg = g.add_inputs("m", message_bits);
    let mut state: Word = vec![Signal::ZERO; crc_width];
    for &bit in msg.iter().rev() {
        // One LFSR step: feedback = msb ⊕ bit; shift; XOR poly taps.
        let feedback = g.add_xor(state[crc_width - 1], bit);
        let mut next: Word = Vec::with_capacity(crc_width);
        next.push(if poly & 1 != 0 {
            feedback
        } else {
            Signal::ZERO
        });
        for i in 1..crc_width {
            let shifted = state[i - 1];
            next.push(if poly >> i & 1 != 0 {
                g.add_xor(shifted, feedback)
            } else {
                shifted
            });
        }
        // The implicit x^width term always feeds back.
        state = next;
    }
    for (i, &s) in state.iter().enumerate() {
        g.add_output(format!("crc{i}"), s);
    }
    g
}

/// Balanced parity tree over `width` inputs.
pub fn parity_tree(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("PARITY{width}"));
    let x = g.add_inputs("x", width);
    let p = g.add_xor_n(&x);
    g.add_output("p", p);
    g
}

/// Binary→Gray converter followed by Gray→binary — the identity, built
/// from two XOR cascades (a favorite equivalence-checking benchmark).
pub fn gray_roundtrip(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("GRAY{width}"));
    let b = g.add_inputs("b", width);
    // binary → gray: g[i] = b[i] ^ b[i+1]
    let mut gray: Word = Vec::with_capacity(width);
    for i in 0..width {
        gray.push(if i + 1 < width {
            g.add_xor(b[i], b[i + 1])
        } else {
            b[i]
        });
    }
    // gray → binary: bin[i] = xor of gray[i..]
    let mut bin: Word = vec![Signal::ZERO; width];
    bin[width - 1] = gray[width - 1];
    for i in (0..width - 1).rev() {
        bin[i] = g.add_xor(gray[i], bin[i + 1]);
    }
    for (i, &s) in bin.iter().enumerate() {
        g.add_output(format!("o{i}"), s);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hamming_corrects_single_errors() {
        let g = hamming_rounds(1);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..40 {
            let data: u64 = rng.gen::<u64>() & 0x7FF;
            // Flip exactly one of the 15 code bits (or none).
            let flip = rng.gen_range(0..16usize);
            let noise: u64 = if flip == 15 { 0 } else { 1 << flip };
            let mut bits = Vec::new();
            for i in 0..11 {
                bits.push(data >> i & 1 != 0);
            }
            for i in 0..15 {
                bits.push(noise >> i & 1 != 0);
            }
            let out: u64 = Simulator::new(&g)
                .eval(&bits)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            assert_eq!(out, data, "data {data:#x}, flipped bit {flip}");
        }
    }

    #[test]
    fn hamming_rounds_chain_correctly() {
        let g = hamming_rounds(3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let data: u64 = rng.gen::<u64>() & 0x7FF;
            let mut bits = Vec::new();
            for i in 0..11 {
                bits.push(data >> i & 1 != 0);
            }
            for r in 0..3 {
                let flip = rng.gen_range(0..15usize);
                for i in 0..15 {
                    bits.push(i == flip && r != 1); // round 1 clean
                }
            }
            let out: u64 = Simulator::new(&g)
                .eval(&bits)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            assert_eq!(out, data);
        }
    }

    /// Software CRC reference (bit-serial LFSR, MSB-first, matching the
    /// generator's `state' = (state << 1) ⊕ (feedback ? poly : 0)`).
    fn crc_ref(message: u64, nbits: usize, width: usize, poly: u64) -> u64 {
        let mut state = 0u64;
        let mask = (1u64 << width) - 1;
        for i in (0..nbits).rev() {
            let bit = message >> i & 1;
            let feedback = (state >> (width - 1) & 1) ^ bit;
            state = (state << 1) & mask;
            if feedback != 0 {
                state ^= poly & mask;
            }
        }
        state
    }

    #[test]
    fn crc8_matches_reference() {
        let g = crc(16, 8, 0x07);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let msg = rng.gen::<u64>() & 0xFFFF;
            let bits: Vec<bool> = (0..16).map(|i| msg >> i & 1 != 0).collect();
            let got: u64 = Simulator::new(&g)
                .eval(&bits)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            assert_eq!(got, crc_ref(msg, 16, 8, 0x07), "msg {msg:#06x}");
        }
    }

    #[test]
    fn crc_is_deep() {
        let g = crc(64, 8, 0x07);
        assert!(g.depth() >= 48, "depth {}", g.depth());
    }

    #[test]
    fn parity_tree_is_parity() {
        let g = parity_tree(9);
        for p in 0..1u32 << 9 {
            let bits: Vec<bool> = (0..9).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(Simulator::new(&g).eval(&bits)[0], p.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn gray_roundtrip_is_identity() {
        let g = gray_roundtrip(8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let v = rng.gen::<u64>() & 0xFF;
            let bits: Vec<bool> = (0..8).map(|i| v >> i & 1 != 0).collect();
            let out: u64 = Simulator::new(&g)
                .eval(&bits)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            assert_eq!(out, v);
        }
    }

    #[test]
    fn hamming_profile_is_deep() {
        let g = hamming_rounds(4);
        assert!(g.depth() >= 40, "depth {}", g.depth());
        assert!(g.gate_count() >= 800, "size {}", g.gate_count());
    }
}
