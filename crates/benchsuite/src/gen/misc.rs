//! Assorted combinational kernels: comparators, population count,
//! barrel shifter, decoder, wide multiplexer and a majority-native
//! median (sorting) network.

use mig::Mig;

use crate::words;

/// Unsigned comparator emitting `lt`, `eq`, `gt`.
pub fn comparator(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("CMP{width}"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let lt = words::word_lt(&mut g, &a, &b);
    let eq = words::word_eq(&mut g, &a, &b);
    let gt = g.add_nor(lt, eq);
    g.add_output("lt", lt);
    g.add_output("eq", eq);
    g.add_output("gt", gt);
    g
}

/// Population counter over `width` inputs.
pub fn popcount_circuit(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("POP{width}"));
    let x = g.add_inputs("x", width);
    let c = words::popcount(&mut g, &x);
    for (i, &s) in c.iter().enumerate() {
        g.add_output(format!("c{i}"), s);
    }
    g
}

/// Variable left barrel shifter.
pub fn barrel_shifter(width: usize) -> Mig {
    assert!(width.is_power_of_two(), "barrel shifter width must be 2^k");
    let mut g = Mig::with_name(format!("BSH{width}"));
    let v = g.add_inputs("v", width);
    let s = g.add_inputs("s", width.trailing_zeros() as usize);
    let out = words::barrel_shift_left(&mut g, &v, &s);
    for (i, &bit) in out.iter().enumerate() {
        g.add_output(format!("o{i}"), bit);
    }
    g
}

/// `bits`-to-`2^bits` one-hot decoder.
pub fn decoder(bits: usize) -> Mig {
    let mut g = Mig::with_name(format!("DEC{bits}"));
    let sel = g.add_inputs("s", bits);
    for (i, out) in g.add_decoder(&sel).into_iter().enumerate() {
        g.add_output(format!("d{i}"), out);
    }
    g
}

/// `2^sel_bits`:1 multiplexer.
pub fn mux_tree(sel_bits: usize) -> Mig {
    let mut g = Mig::with_name(format!("MUX{}", 1 << sel_bits));
    let sel = g.add_inputs("s", sel_bits);
    let data = g.add_inputs("d", 1 << sel_bits);
    let out = g.add_mux_n(&sel, &data);
    g.add_output("o", out);
    g
}

/// Median filter over `n` (odd) single-bit lanes of `width`-bit words,
/// bit-sliced: the native majority application. For `n = 3` each output
/// bit is literally one MAJ gate — the showcase of majority logic.
pub fn median3(width: usize) -> Mig {
    let mut g = Mig::with_name(format!("MED3x{width}"));
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let c = g.add_inputs("c", width);
    for i in 0..width {
        let m = g.add_maj(a[i], b[i], c[i]);
        g.add_output(format!("m{i}"), m);
    }
    g
}

/// Iterated 1-D median smoothing over `width` boolean lanes: `rounds`
/// rounds of `m[i] ← ⟨m[i−1] m[i] m[i+1]⟩` with wrap-around — every
/// gate is a bare majority node, the signature workload of
/// majority-native technologies, with depth = `rounds`.
pub fn median_smooth(width: usize, rounds: usize) -> Mig {
    assert!(width >= 3, "median smoothing needs at least 3 lanes");
    let mut g = Mig::with_name(format!("MEDS{width}x{rounds}"));
    let mut lanes = g.add_inputs("x", width);
    for _ in 0..rounds {
        let next: Vec<_> = (0..width)
            .map(|i| {
                let l = lanes[(i + width - 1) % width];
                let r = lanes[(i + 1) % width];
                g.add_maj(l, lanes[i], r)
            })
            .collect();
        lanes = next;
    }
    for (i, &s) in lanes.iter().enumerate() {
        g.add_output(format!("m{i}"), s);
    }
    g
}

/// Bitonic-style 2-element sort of `width`-bit unsigned words:
/// outputs `(min, max)` — one compare-and-swap stage, `stages` of which
/// chain into a sorting network over `2·stages` values here reduced to
/// a chain for a deep benchmark shape.
pub fn sort2_chain(width: usize, stages: usize) -> Mig {
    let mut g = Mig::with_name(format!("SORT{width}x{stages}"));
    let mut cur = g.add_inputs("v0_", width);
    for s in 1..=stages {
        let next = g.add_inputs(&format!("v{s}_"), width);
        let lt = words::word_lt(&mut g, &cur, &next);
        // keep the max flowing down the chain
        cur = words::word_mux(&mut g, lt, &next, &cur);
    }
    for (i, &s) in cur.iter().enumerate() {
        g.add_output(format!("max{i}"), s);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn comparator_flags() {
        let g = comparator(6);
        let sim = Simulator::new(&g);
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..60 {
            let a = rng.gen::<u64>() & 0x3F;
            let b = rng.gen::<u64>() & 0x3F;
            let mut bits = Vec::new();
            for i in 0..6 {
                bits.push(a >> i & 1 != 0);
            }
            for i in 0..6 {
                bits.push(b >> i & 1 != 0);
            }
            let out = sim.eval(&bits);
            assert_eq!(out, vec![a < b, a == b, a > b], "a={a}, b={b}");
        }
    }

    #[test]
    fn median3_is_bitwise_majority() {
        let g = median3(4);
        let sim = Simulator::new(&g);
        for p in 0..1u32 << 12 {
            let bits: Vec<bool> = (0..12).map(|i| p >> i & 1 != 0).collect();
            let out = sim.eval(&bits);
            for i in 0..4 {
                let (a, b, c) = (bits[i], bits[4 + i], bits[8 + i]);
                let expect = (a as u8 + b as u8 + c as u8) >= 2;
                assert_eq!(out[i], expect);
            }
        }
    }

    #[test]
    fn median3_size_is_one_gate_per_bit() {
        let g = median3(8);
        assert_eq!(g.gate_count(), 8);
        assert_eq!(g.depth(), 1);
    }

    #[test]
    fn sort_chain_tracks_maximum() {
        let g = sort2_chain(5, 3);
        let sim = Simulator::new(&g);
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..40 {
            let vals: Vec<u64> = (0..4).map(|_| rng.gen::<u64>() & 0x1F).collect();
            let mut bits = Vec::new();
            for &v in &vals {
                for i in 0..5 {
                    bits.push(v >> i & 1 != 0);
                }
            }
            let got: u64 = sim
                .eval(&bits)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u64) << i)
                .sum();
            assert_eq!(got, *vals.iter().max().unwrap(), "vals {vals:?}");
        }
    }

    #[test]
    fn decoder_and_mux_shapes() {
        assert_eq!(decoder(4).output_count(), 16);
        assert_eq!(mux_tree(3).input_count(), 3 + 8);
        assert_eq!(popcount_circuit(16).input_count(), 16);
        assert!(barrel_shifter(16).gate_count() > 0);
    }
}

#[cfg(test)]
mod median_smooth_tests {
    use super::*;
    use mig::Simulator;

    /// Software model of the smoothing filter.
    fn smooth_ref(mut lanes: Vec<bool>, rounds: usize) -> Vec<bool> {
        let w = lanes.len();
        for _ in 0..rounds {
            lanes = (0..w)
                .map(|i| {
                    let (l, m, r) = (lanes[(i + w - 1) % w], lanes[i], lanes[(i + 1) % w]);
                    (l as u8 + m as u8 + r as u8) >= 2
                })
                .collect();
        }
        lanes
    }

    #[test]
    fn smoothing_matches_reference() {
        let g = median_smooth(8, 4);
        let sim = Simulator::new(&g);
        for p in 0..256u32 {
            let bits: Vec<bool> = (0..8).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(sim.eval(&bits), smooth_ref(bits.clone(), 4), "p={p:08b}");
        }
    }

    #[test]
    fn depth_equals_rounds() {
        let g = median_smooth(16, 6);
        assert!(g.depth() <= 6);
        assert!(
            g.depth() >= 5,
            "strash may fold a little, not a lot: {}",
            g.depth()
        );
    }

    #[test]
    fn smoothing_reaches_fixpoints() {
        // All-equal inputs are fixpoints of the filter.
        let g = median_smooth(8, 3);
        let sim = Simulator::new(&g);
        assert_eq!(sim.eval(&[false; 8]), vec![false; 8]);
        assert_eq!(sim.eval(&[true; 8]), vec![true; 8]);
    }
}
