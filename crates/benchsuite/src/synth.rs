//! Seeded synthetic-circuit generator: parameterized MIG families.
//!
//! The fixed 37-circuit registry only exercises the flow on a handful
//! of hand-written profiles; this module opens an *unbounded*,
//! fully-deterministic workload space. A synthetic circuit is named by
//! a **family**, a **seed** and a sorted `key=value` parameter list —
//! the canonical string form is
//!
//! ```text
//! synth:<family>:<seed>[:key=value[,key=value]*]
//! ```
//!
//! which is exactly what `wavepipe::SynthSpec::name` formats and what
//! [`crate::build_mig`] feeds into [`build`] here, so engine flow specs
//! (`CircuitSpec::Synthetic`) and plain registry names resolve
//! identically.
//!
//! ## Families
//!
//! | family    | parameters (defaults)                              | shape |
//! |-----------|----------------------------------------------------|-------|
//! | `dag`     | `nodes` (200), `depth` (0 ⇒ derived), `inputs` (16), `outputs` (8), `fanout` (0 ⇒ unbounded) | random DAG with exact depth and a bounded fan-out profile |
//! | `adder`   | `width` (16), `chains` (1)                         | ripple-carry adder chain (deep, carry-dominated) |
//! | `parity`  | `width` (64), `layers` (1)                         | chained XOR reduction trees |
//! | `majtree` | `width` (81), `trees` (1)                          | native 3-ary majority reduction trees over shared inputs |
//! | `compose` | `blocks` (4), `mode` (0 serial / 1 parallel / 2 shared-input), `width` (8), `nodes` (60) | seed-derived blocks glued by a composition operator |
//! | `chain`   | `length` (32), `chains` (1)                        | maximally skewed AND/OR chains — depth ≈ `length`, the worst case (and best demonstrator) for the depth-rewrite pass |
//! | `shared`  | `groups` (8), `width` (12)                         | shared-context Ω.D collapse groups — every group is a 3-gate pattern `optimize_size` provably shrinks to 2 |
//!
//! Every generator is **total**: parameters are clamped to feasible
//! ranges, so any `(family, seed, params)` triple yields a valid,
//! non-empty circuit — and the same triple yields a **bit-identical**
//! netlist on every call, process and platform (asserted by the
//! metamorphic suite), which is what lets the generated graph serve as
//! an engine cache identity.
//!
//! The composition operators ([`compose_serial`], [`compose_parallel`],
//! [`compose_shared`]) are public: the cograph-style join/sum algebra
//! over blocks is how scaling sweeps synthesize circuits whose depth
//! and fan-out profiles are controlled independently.

use mig::{Mig, Node, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parsed `synth:*` name: family, seed, raw parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedSynth {
    /// Generator family name.
    pub family: String,
    /// RNG seed.
    pub seed: u64,
    /// `key = value` parameters as written (canonicalized on build).
    pub params: Vec<(String, u64)>,
}

impl ParsedSynth {
    /// The canonical name (params sorted by key) — the graph name every
    /// equivalent spelling generates under, so engine content hashes
    /// agree.
    pub fn canonical_name(&self) -> String {
        use std::fmt::Write as _;
        let mut params = self.params.clone();
        params.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut out = format!("synth:{}:{}", self.family, self.seed);
        for (i, (key, value)) in params.iter().enumerate() {
            out.push(if i == 0 { ':' } else { ',' });
            let _ = write!(out, "{key}={value}");
        }
        out
    }
}

/// Parses a `synth:family:seed[:k=v,…]` name. `None` when the string is
/// not in the grammar (wrong prefix, non-numeric seed or value).
pub fn parse_name(name: &str) -> Option<ParsedSynth> {
    let rest = name.strip_prefix("synth:")?;
    let mut pieces = rest.splitn(3, ':');
    let family = pieces.next()?.to_owned();
    let seed: u64 = pieces.next()?.parse().ok()?;
    let mut params = Vec::new();
    if let Some(tail) = pieces.next() {
        for pair in tail.split(',') {
            let (key, value) = pair.split_once('=')?;
            if key.is_empty() {
                return None;
            }
            params.push((key.to_owned(), value.parse().ok()?));
        }
    }
    if family.is_empty() {
        return None;
    }
    Some(ParsedSynth {
        family,
        seed,
        params,
    })
}

/// Sorted-or-not parameter lookup with a clamped default.
fn param(params: &[(String, u64)], key: &str, default: u64, min: u64, max: u64) -> u64 {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map_or(default, |(_, v)| *v)
        .clamp(min, max)
}

/// The family names [`generate`] accepts, for docs and sweeps.
pub const FAMILIES: [&str; 7] = [
    "dag", "adder", "parity", "majtree", "compose", "chain", "shared",
];

/// A few ready-made synthetic names spanning the families — handy
/// defaults for examples and smoke sweeps (any other `synth:*` name
/// works just as well).
pub const PRESETS: [&str; 8] = [
    "synth:dag:1",
    "synth:dag:2:depth=14,nodes=1000",
    "synth:adder:3:chains=2,width=24",
    "synth:parity:4:layers=2,width=48",
    "synth:majtree:5:trees=3,width=81",
    "synth:compose:6:blocks=4,mode=2",
    "synth:chain:7:length=48",
    "synth:shared:8:groups=16,width=16",
];

/// Generates the named family. `None` for an unknown family — the
/// registry turns that into an unknown-circuit error. The graph is
/// named by the *canonical* form of the request so every equivalent
/// spelling hashes identically.
pub fn generate(family: &str, seed: u64, params: &[(String, u64)]) -> Option<Mig> {
    let mut g = match family {
        "dag" => dag(seed, params),
        "adder" => adder(seed, params),
        "parity" => parity(seed, params),
        "majtree" => majtree(seed, params),
        "compose" => compose(seed, params),
        "chain" => chain(seed, params),
        "shared" => shared(seed, params),
        _ => return None,
    };
    g.set_name(
        ParsedSynth {
            family: family.to_owned(),
            seed,
            params: params.to_vec(),
        }
        .canonical_name(),
    );
    Some(g)
}

/// Parses and generates in one step — the `synth:*` arm of
/// [`crate::build_mig`].
pub fn build(name: &str) -> Option<Mig> {
    let parsed = parse_name(name)?;
    generate(&parsed.family, parsed.seed, &parsed.params)
}

// --- dag ---------------------------------------------------------------

/// Random DAG with an exact depth target and a controllable fan-out
/// profile: every gate anchors one fan-in on the previous level (so the
/// depth target is realized exactly) and draws the rest from earlier
/// levels, preferring signals whose fan-out is still under the `fanout`
/// budget — the knob that makes the fan-out-restriction pass's worst
/// case reachable on demand.
fn dag(seed: u64, params: &[(String, u64)]) -> Mig {
    let nodes = param(params, "nodes", 200, 4, 10_000_000) as usize;
    // At least 3 inputs: a majority over fewer distinct nodes always
    // folds by the Ω axioms, so no level-1 gate could ever exist.
    let inputs = param(params, "inputs", 16, 3, 4_096) as usize;
    let outputs = param(params, "outputs", 8, 1, 4_096) as usize;
    // Default depth scales with log²(nodes) — the regime of mapped
    // control netlists; an explicit `depth` pins it (clamped feasible).
    let derived = {
        let lg = (usize::BITS - nodes.leading_zeros()) as u64;
        (lg * lg / 4).max(2)
    };
    let depth = param(params, "depth", derived, 1, nodes as u64) as u32;
    let fanout_budget = param(params, "fanout", 0, 0, 64) as u32;

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A6_0000);
    let mut g = Mig::new();
    let pis = g.add_inputs("pi", inputs);

    // Gates per level: one guaranteed (depth realization), the rest
    // spread with a mid-weighted bell like real mapped logic.
    let levels_n = depth as usize;
    let mut per_level = vec![1usize; levels_n];
    let mut remaining = nodes.saturating_sub(levels_n);
    while remaining > 0 {
        let l = (rng.gen_range(0..levels_n) + rng.gen_range(0..levels_n)) / 2;
        per_level[l] += 1;
        remaining -= 1;
    }

    // levels[l] = canonical signals whose ASAP level is exactly l.
    let mut levels: Vec<Vec<Signal>> = vec![pis.clone()];
    let mut fanout = vec![0u32; g.node_count() + nodes + 8];
    let mut node_levels: Vec<u32> = vec![0; g.node_count()];
    let level_of = |g: &Mig, node_levels: &mut Vec<u32>, s: Signal| -> u32 {
        while node_levels.len() < g.node_count() {
            let id = mig::NodeId::from_index(node_levels.len());
            let lvl = match g.node(id) {
                Node::Majority(f) => {
                    1 + f
                        .iter()
                        .map(|x| node_levels[x.node().index()])
                        .max()
                        .expect("gates have fan-ins")
                }
                _ => 0,
            };
            node_levels.push(lvl);
        }
        node_levels[s.node().index()]
    };
    // Geometric backward distance (locality), then a budget-aware pick:
    // sample candidates (re-rolling the level each time) and return the
    // first one still under the fan-out budget, falling back to the
    // least-loaded candidate seen. With no budget the first sample wins,
    // which is exactly the unconstrained locality distribution.
    let pick = |rng: &mut StdRng, levels: &[Vec<Signal>], fanout: &[u32], l: usize| -> Signal {
        let mut best: Option<Signal> = None;
        for _ in 0..12 {
            let mut delta = 0usize;
            while delta < l && rng.gen_bool(0.5) {
                delta += 1;
            }
            let lvl = &levels[l - delta];
            let candidate = lvl[rng.gen_range(0..lvl.len())];
            if fanout_budget == 0 || fanout[candidate.node().index()] < fanout_budget {
                return candidate;
            }
            best = Some(match best {
                Some(b) if fanout[b.node().index()] <= fanout[candidate.node().index()] => b,
                _ => candidate,
            });
        }
        best.expect("twelve samples leave a fallback")
    };

    for (l, &count) in per_level.iter().enumerate() {
        let target = (l + 1) as u32;
        let mut this_level: Vec<Signal> = Vec::with_capacity(count);
        for _ in 0..count {
            for attempt in 0..16 {
                // Anchor on the lowest-fanout previous-level signal so
                // budgeted profiles spread anchors too.
                let anchors = &levels[l];
                let a = if fanout_budget > 0 && attempt < 8 {
                    *anchors
                        .iter()
                        .min_by_key(|s| fanout[s.node().index()])
                        .expect("levels are non-empty")
                } else {
                    anchors[rng.gen_range(0..anchors.len())]
                };
                let a = a.complement_if(rng.gen());
                let b = pick(&mut rng, &levels, &fanout, l).complement_if(rng.gen());
                let c = pick(&mut rng, &levels, &fanout, l).complement_if(rng.gen());
                let before = g.node_count();
                let s = g.add_maj(a, b, c);
                if g.node_count() > before && level_of(&g, &mut node_levels, s) == target {
                    if fanout.len() < g.node_count() {
                        fanout.resize(g.node_count() + nodes, 0);
                    }
                    for f in [a, b, c] {
                        fanout[f.node().index()] += 1;
                    }
                    this_level.push(s.with_complement(false));
                    break;
                }
            }
        }
        if this_level.is_empty() {
            // Force the level so the depth target is realized: a gate
            // over three *distinct* non-constant nodes (the anchor at
            // level `l` plus two earlier ones) cannot fold by any Ω
            // axiom, so its level is exactly `target` — deterministic,
            // no retry loop.
            let a = levels[l][rng.gen_range(0..levels[l].len())];
            let mut others: Vec<Signal> = Vec::with_capacity(2);
            'hunt: for lvl in &levels {
                for s in lvl {
                    if s.node() != a.node() && others.iter().all(|o| o.node() != s.node()) {
                        others.push(*s);
                        if others.len() == 2 {
                            break 'hunt;
                        }
                    }
                }
            }
            let (b, c) = (others[0], others[1]); // ≥ 3 inputs guarantee them
            let s = g.add_maj(a, b, c);
            debug_assert_eq!(level_of(&g, &mut node_levels, s), target);
            let _ = level_of(&g, &mut node_levels, s);
            if fanout.len() < g.node_count() {
                fanout.resize(g.node_count() + nodes, 0);
            }
            this_level.push(s.with_complement(false));
        }
        levels.push(this_level);
    }

    // First output pins the deepest level; the rest sample the top half
    // so output depths vary (exercises output padding).
    let deepest = *levels[levels_n]
        .last()
        .expect("deepest level non-empty by construction");
    g.add_output("po0", deepest.complement_if(rng.gen()));
    for i in 1..outputs {
        let l = rng.gen_range((levels_n / 2).max(1)..=levels_n);
        let s = levels[l][rng.gen_range(0..levels[l].len())];
        g.add_output(format!("po{i}"), s.complement_if(rng.gen()));
    }
    g
}

// --- adder -------------------------------------------------------------

/// Ripple-carry adder chain: stage 0 adds two fresh `width`-bit words;
/// each later stage adds the previous sums to a rotated, seed-scrambled
/// copy of themselves. Deep, carry-propagation-dominated arithmetic
/// with bounded primary I/O.
fn adder(seed: u64, params: &[(String, u64)]) -> Mig {
    let width = param(params, "width", 16, 1, 512) as usize;
    let chains = param(params, "chains", 1, 1, 64) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xADD0_0000);
    let mut g = Mig::new();
    let a = g.add_inputs("a", width);
    let b = g.add_inputs("b", width);
    let mut cin = g.add_input("cin");

    let mut x = a;
    let mut y = b;
    for _ in 0..chains {
        let mut sums = Vec::with_capacity(width);
        let mut carry = cin;
        for i in 0..width {
            let (s, c) = g.add_full_adder(x[i], y[i], carry);
            sums.push(s);
            carry = c;
        }
        // Next stage: sums + (sums rotated by a seed-derived amount,
        // with seed-derived polarities) — keeps the chain irregular.
        let rot = rng.gen_range(1..=width.max(1));
        x = sums.clone();
        y = (0..width)
            .map(|i| sums[(i + rot) % width].complement_if(rng.gen()))
            .collect();
        cin = carry;
    }
    for (i, s) in x.iter().enumerate() {
        g.add_output(format!("s{i}"), *s);
    }
    g.add_output("cout", cin);
    g
}

// --- parity ------------------------------------------------------------

/// Chained XOR reduction trees: layer 0 reduces the inputs, each later
/// layer reduces a rotated input vector with the previous root spliced
/// in — log-depth trees stacked `layers` high.
fn parity(seed: u64, params: &[(String, u64)]) -> Mig {
    let width = param(params, "width", 64, 2, 4_096) as usize;
    let layers = param(params, "layers", 1, 1, 32) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9A21_0000);
    let mut g = Mig::new();
    let pis = g.add_inputs("x", width);

    let mut root = g.add_xor_n(&pis);
    g.add_output("p0", root);
    for layer in 1..layers {
        let rot = rng.gen_range(1..width);
        let mut vec: Vec<Signal> = (0..width)
            .map(|i| pis[(i + rot) % width].complement_if(rng.gen()))
            .collect();
        vec[0] = root;
        root = g.add_xor_n(&vec);
        g.add_output(format!("p{layer}"), root);
    }
    g
}

// --- majtree -----------------------------------------------------------

/// Native 3-ary majority reduction trees. `trees` rotated copies share
/// the same primary inputs, so every input's fan-out grows linearly
/// with `trees` — a pure-majority stress profile for fan-out
/// restriction that no AND/OR-mapped benchmark produces.
fn majtree(seed: u64, params: &[(String, u64)]) -> Mig {
    let width = param(params, "width", 81, 3, 6_561) as usize;
    let trees = param(params, "trees", 1, 1, 64) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3A11_0000);
    let mut g = Mig::new();
    let pis = g.add_inputs("m", width);

    for t in 0..trees {
        let rot = if t == 0 { 0 } else { rng.gen_range(1..width) };
        let mut layer: Vec<Signal> = (0..width)
            .map(|i| pis[(i + rot) % width].complement_if(t != 0 && rng.gen()))
            .collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(3));
            let mut chunks = layer.chunks_exact(3);
            for chunk in &mut chunks {
                next.push(g.add_maj(chunk[0], chunk[1], chunk[2]));
            }
            match *chunks.remainder() {
                [x] => next.push(x),
                [x, y] => {
                    // Anchor on a sibling root when one exists; the
                    // constant-one fallback keeps both leftovers live
                    // (⟨x y x⟩ would fold to x by the majority axiom).
                    let anchor = next.first().copied().unwrap_or(Signal::ONE);
                    next.push(g.add_maj(x, y, anchor));
                }
                _ => {}
            }
            layer = next;
        }
        g.add_output(format!("t{t}"), layer[0]);
    }
    g
}

// --- chain -------------------------------------------------------------

/// Maximally skewed AND/OR chains: each chain folds its inputs one at a
/// time (`f = x[i] ∧/∨ f`, seed-derived gate mix and polarities), so
/// depth equals gate count — the associativity-rewrite worst case. A
/// depth rewrite re-balances each chain toward `log₂(length)`, which is
/// what makes this family the QoR demonstrator for `optimize_depth`.
/// Multiple chains read rotated copies of the same inputs.
fn chain(seed: u64, params: &[(String, u64)]) -> Mig {
    let length = param(params, "length", 32, 2, 4_096) as usize;
    let chains = param(params, "chains", 1, 1, 64) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A1_0000);
    let mut g = Mig::new();
    let pis = g.add_inputs("x", length);

    for c in 0..chains {
        let rot = if c == 0 { 0 } else { rng.gen_range(1..length) };
        let mut f = pis[rot].complement_if(c != 0 && rng.gen());
        for i in 1..length {
            let x = pis[(i + rot) % length].complement_if(rng.gen());
            f = if rng.gen() {
                g.add_and(x, f)
            } else {
                g.add_or(x, f)
            };
        }
        g.add_output(format!("c{c}"), f);
    }
    g
}

// --- shared ------------------------------------------------------------

/// Shared-context Ω.D collapse groups: every group is the 3-gate
/// pattern `⟨⟨u v a⟩ ⟨u v b⟩ z⟩` whose two inner gates share the
/// context `(u, v)` and die with the group output, so the
/// left-to-right distributivity collapse rewrites it to the 2-gate
/// `⟨u v ⟨a b z⟩⟩` — the family where `optimize_size` provably removes
/// one gate per group (modulo strash sharing between groups).
fn shared(seed: u64, params: &[(String, u64)]) -> Mig {
    let groups = param(params, "groups", 8, 1, 4_096) as usize;
    let width = param(params, "width", 12, 5, 4_096) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A4E_0000);
    let mut g = Mig::new();
    let pis = g.add_inputs("x", width);

    for group in 0..groups {
        // Five distinct inputs per group: shared context (u, v),
        // differing legs (a, b) and the outer third input z.
        let mut picks: Vec<Signal> = Vec::with_capacity(5);
        while picks.len() < 5 {
            let s = pis[rng.gen_range(0..width)];
            if picks.iter().all(|p| p.node() != s.node()) {
                picks.push(s);
            }
        }
        let (u, v, z) = (picks[0], picks[1].complement_if(rng.gen()), picks[4]);
        let a = picks[2].complement_if(rng.gen());
        let b = picks[3].complement_if(rng.gen());
        let g1 = g.add_maj(u, v, a);
        let g2 = g.add_maj(u, v, b);
        let out = g.add_maj(g1, g2, z);
        g.add_output(format!("s{group}"), out);
    }
    g
}

// --- composition operators --------------------------------------------

/// Instantiates `block` inside `host`, driving the copy's inputs from
/// `inputs` (wrapping when the block needs more — the shared-input
/// join). Returns the signals of the block's outputs. The arena walk is
/// topological by construction, so this is a single O(nodes) pass.
pub fn instantiate(host: &mut Mig, block: &Mig, inputs: &[Signal]) -> Vec<Signal> {
    assert!(!inputs.is_empty(), "a block instantiation needs inputs");
    let mut map: Vec<Signal> = Vec::with_capacity(block.node_count());
    for id in block.node_ids() {
        let mapped = match block.node(id) {
            Node::Constant => Signal::ZERO,
            Node::Input(position) => inputs[*position as usize % inputs.len()],
            Node::Majority(fanins) => {
                let f = |i: usize| {
                    let s: Signal = fanins[i];
                    map[s.node().index()].complement_if(s.is_complement())
                };
                let (a, b, c) = (f(0), f(1), f(2));
                host.add_maj(a, b, c)
            }
        };
        map.push(mapped);
    }
    block
        .outputs()
        .iter()
        .map(|o| map[o.signal.node().index()].complement_if(o.signal.is_complement()))
        .collect()
}

/// Serial composition: fresh inputs feed the first block, each block's
/// outputs feed the next (wrapping as needed). Depths add up.
pub fn compose_serial(name: impl Into<String>, blocks: &[Mig], width: usize) -> Mig {
    let mut g = Mig::with_name(name);
    let mut wave: Vec<Signal> = g.add_inputs("in", width.max(1));
    for block in blocks {
        let outs = instantiate(&mut g, block, &wave);
        if !outs.is_empty() {
            wave = outs;
        }
    }
    for (i, s) in wave.iter().enumerate() {
        g.add_output(format!("out{i}"), *s);
    }
    g
}

/// Parallel composition (disjoint sum): every block gets its own fresh
/// primary inputs; outputs are concatenated. Sizes add, depth is the
/// max.
pub fn compose_parallel(name: impl Into<String>, blocks: &[Mig]) -> Mig {
    let mut g = Mig::with_name(name);
    let mut out_index = 0usize;
    for (bi, block) in blocks.iter().enumerate() {
        let inputs = g.add_inputs(&format!("b{bi}_in"), block.input_count().max(1));
        for s in instantiate(&mut g, block, &inputs) {
            g.add_output(format!("out{out_index}"), s);
            out_index += 1;
        }
    }
    g
}

/// Shared-input join: every block reads the *same* primary inputs
/// (wrapping), outputs are concatenated. Input fan-out scales with the
/// number of blocks — the join analogue of a cograph 1-sum.
pub fn compose_shared(name: impl Into<String>, blocks: &[Mig], width: usize) -> Mig {
    let mut g = Mig::with_name(name);
    let inputs = g.add_inputs("in", width.max(1));
    let mut out_index = 0usize;
    for block in blocks {
        for s in instantiate(&mut g, block, &inputs) {
            g.add_output(format!("out{out_index}"), s);
            out_index += 1;
        }
    }
    g
}

/// The `compose` family: `blocks` seed-derived blocks (drawn from the
/// other families with small parameters) glued by `mode` (0 serial,
/// 1 parallel, 2 shared-input join).
fn compose(seed: u64, params: &[(String, u64)]) -> Mig {
    let blocks_n = param(params, "blocks", 4, 1, 64) as usize;
    let mode = param(params, "mode", 0, 0, 2);
    let width = param(params, "width", 8, 2, 256) as usize;
    let block_nodes = param(params, "nodes", 60, 4, 4_096);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0A9_0000);

    let blocks: Vec<Mig> = (0..blocks_n)
        .map(|b| {
            let sub_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(b as u64);
            let pick = rng.gen_range(0..4u32);
            match pick {
                0 => generate(
                    "dag",
                    sub_seed,
                    &[
                        ("inputs".to_owned(), width as u64),
                        ("nodes".to_owned(), block_nodes),
                        ("outputs".to_owned(), width as u64),
                    ],
                ),
                1 => generate(
                    "adder",
                    sub_seed,
                    &[("width".to_owned(), (width as u64).clamp(1, 32))],
                ),
                2 => generate(
                    "parity",
                    sub_seed,
                    &[("width".to_owned(), (width as u64).max(2))],
                ),
                _ => generate(
                    "majtree",
                    sub_seed,
                    &[("width".to_owned(), (width as u64).max(3))],
                ),
            }
            .expect("block families are known")
        })
        .collect();

    match mode {
        0 => compose_serial("compose", &blocks, width),
        1 => compose_parallel("compose", &blocks),
        _ => compose_shared("compose", &blocks, width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Simulator;

    fn patterns(inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| (0..inputs).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn every_family_generates_deterministically() {
        for (i, family) in FAMILIES.iter().enumerate() {
            let a = generate(family, 40 + i as u64, &[]).expect("known family");
            let b = generate(family, 40 + i as u64, &[]).expect("known family");
            assert_eq!(
                mig::write_mig(&a),
                mig::write_mig(&b),
                "{family}: same request must be bit-identical"
            );
            assert!(a.gate_count() > 0, "{family} is empty");
            assert!(a.output_count() > 0, "{family} has no outputs");
            let c = generate(family, 41 + i as u64, &[]).expect("known family");
            assert_ne!(
                mig::write_mig(&a),
                mig::write_mig(&c),
                "{family}: different seeds must differ"
            );
        }
        assert!(generate("nope", 1, &[]).is_none());
    }

    #[test]
    fn names_parse_and_canonicalize() {
        let parsed = parse_name("synth:dag:7:nodes=500,depth=12").expect("grammar");
        assert_eq!(parsed.family, "dag");
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.canonical_name(), "synth:dag:7:depth=12,nodes=500");

        // Equivalent spellings generate the same graph under the same
        // canonical name (⇒ same engine content hash).
        let a = build("synth:dag:7:nodes=160,depth=9").unwrap();
        let b = build("synth:dag:7:depth=9,nodes=160").unwrap();
        assert_eq!(a.name(), "synth:dag:7:depth=9,nodes=160");
        assert_eq!(mig::write_mig(&a), mig::write_mig(&b));

        for bad in [
            "dag:7",
            "synth:",
            "synth:dag",
            "synth:dag:x",
            "synth:dag:7:nodes",
            "synth:dag:7:=3",
            "synth:dag:7:n=x",
        ] {
            assert!(parse_name(bad).is_none(), "{bad} should not parse");
        }
    }

    #[test]
    fn presets_build() {
        for name in PRESETS {
            let g = build(name).unwrap_or_else(|| panic!("{name} must build"));
            assert!(g.gate_count() > 0, "{name}");
            assert_eq!(g.name(), parse_name(name).unwrap().canonical_name());
        }
    }

    #[test]
    fn dag_hits_depth_and_fanout_targets() {
        let g = build("synth:dag:11:depth=9,nodes=300").unwrap();
        assert_eq!(g.depth(), 9);
        assert!((270..=300).contains(&g.gate_count()), "{}", g.gate_count());

        // A fan-out budget keeps the gate-level profile under the cap
        // (primary inputs may exceed it — there are only `inputs` of
        // them to anchor a whole level on).
        let g = build("synth:dag:11:depth=8,fanout=4,inputs=32,nodes=240").unwrap();
        let counts = g.fanout_counts();
        let mut over = 0usize;
        for id in g.gate_ids() {
            if counts[id.index()] > 4 {
                over += 1;
            }
        }
        assert!(
            over * 10 <= g.gate_count(),
            "{over} of {} gates exceed the fan-out budget",
            g.gate_count()
        );

        // Extreme parameters clamp instead of panicking.
        let g = build("synth:dag:1:depth=999999,inputs=0,nodes=10").unwrap();
        assert!(g.gate_count() >= 10);
    }

    #[test]
    fn adder_first_stage_is_a_real_adder() {
        let g = build("synth:adder:9:width=6").unwrap();
        let sim = Simulator::new(&g);
        // inputs: a0..5, b0..5, cin; outputs s0..5, cout.
        for (a, b, cin) in [(13u32, 52u32, 0u32), (63, 63, 1), (0, 0, 1), (21, 42, 0)] {
            let mut pattern = Vec::new();
            for i in 0..6 {
                pattern.push(a >> i & 1 != 0);
            }
            for i in 0..6 {
                pattern.push(b >> i & 1 != 0);
            }
            pattern.push(cin != 0);
            let out = sim.eval(&pattern);
            let expect = a + b + cin;
            for (i, bit) in out.iter().enumerate().take(6) {
                assert_eq!(*bit, expect >> i & 1 != 0, "sum bit {i} of {a}+{b}+{cin}");
            }
            assert_eq!(out[6], expect >> 6 & 1 != 0, "carry of {a}+{b}+{cin}");
        }
    }

    #[test]
    fn parity_layer0_is_parity() {
        let g = build("synth:parity:3:width=9").unwrap();
        let sim = Simulator::new(&g);
        for p in patterns(9, 16, 3) {
            let ones = p.iter().filter(|b| **b).count();
            assert_eq!(sim.eval(&p)[0], ones % 2 == 1);
        }
    }

    #[test]
    fn majtree_tree0_is_a_majority_cascade() {
        let g = build("synth:majtree:2:width=9").unwrap();
        // All-ones → 1, all-zeros → 0 for the unrotated tree.
        let sim = Simulator::new(&g);
        assert!(sim.eval(&[true; 9])[0]);
        assert!(!sim.eval(&[false; 9])[0]);
        // `trees` multiplies input fan-out.
        let one = build("synth:majtree:2:trees=1,width=27").unwrap();
        let many = build("synth:majtree:2:trees=6,width=27").unwrap();
        let max = |g: &Mig| g.fanout_counts().into_iter().max().unwrap_or(0);
        assert!(max(&many) > max(&one));
    }

    #[test]
    fn composition_operators_obey_their_algebra() {
        let a = generate("parity", 1, &[("width".to_owned(), 4)]).unwrap();
        let b = generate("majtree", 2, &[("width".to_owned(), 3)]).unwrap();

        // Parallel: disjoint sum — sizes add, functions are unchanged.
        let par = compose_parallel("par", &[a.clone(), b.clone()]);
        assert_eq!(par.input_count(), a.input_count() + b.input_count());
        assert_eq!(par.output_count(), a.output_count() + b.output_count());
        let sim = Simulator::new(&par);
        for p in patterns(par.input_count(), 12, 9) {
            let got = sim.eval(&p);
            let (pa, pb) = p.split_at(a.input_count());
            let mut expect = Simulator::new(&a).eval(pa);
            expect.extend(Simulator::new(&b).eval(pb));
            assert_eq!(got, expect, "parallel composition must not mix blocks");
        }

        // Shared join: blocks read the same inputs (wrapped).
        let shared = compose_shared("shared", &[a.clone(), b.clone()], 4);
        assert_eq!(shared.input_count(), 4);
        let sim = Simulator::new(&shared);
        for p in patterns(4, 12, 10) {
            let got = sim.eval(&p);
            let expect_a = Simulator::new(&a).eval(&p);
            let wrapped: Vec<bool> = (0..3).map(|i| p[i % 4]).collect();
            let expect_b = Simulator::new(&b).eval(&wrapped);
            assert_eq!(&got[..expect_a.len()], &expect_a[..]);
            assert_eq!(&got[expect_a.len()..], &expect_b[..]);
        }

        // Serial: depths accumulate. (Multi-output blocks, so the chain
        // cannot collapse to a constant by rewriting.)
        let block = generate("adder", 3, &[("width".to_owned(), 4)]).unwrap();
        let one = compose_serial("one", std::slice::from_ref(&block), 4);
        let three = compose_serial("three", &[block.clone(), block.clone(), block], 4);
        assert!(
            three.depth() > one.depth(),
            "serial chain must be deeper than one block ({} vs {})",
            three.depth(),
            one.depth()
        );
    }

    #[test]
    fn chain_is_maximally_skewed_and_rebalances() {
        let g = build("synth:chain:7:length=48").unwrap();
        assert_eq!(g.depth(), 47, "one gate per input after the first");
        // The family exists to demonstrate the depth rewrite: a single
        // pass of optimize_depth must at least halve the chain depth.
        let (opt, _) = mig::optimize_depth(&g, 64);
        assert!(
            opt.depth() * 2 <= g.depth(),
            "rewrite got {} from {}",
            opt.depth(),
            g.depth()
        );
        // Multiple chains share the input vector.
        let many = build("synth:chain:7:chains=3,length=24").unwrap();
        assert_eq!(many.input_count(), 24);
        assert_eq!(many.output_count(), 3);
    }

    #[test]
    fn shared_groups_collapse_under_the_size_rewrite() {
        let g = build("synth:shared:8:groups=16,width=16").unwrap();
        assert_eq!(g.output_count(), 16);
        let opt = mig::optimize_size(&g, 8);
        assert!(
            opt.gate_count() < g.gate_count(),
            "size rewrite must shrink the collapse groups ({} from {})",
            opt.gate_count(),
            g.gate_count()
        );
        // Soundness: the collapse preserves every group function.
        let sim_a = Simulator::new(&g);
        let sim_b = Simulator::new(&opt);
        for p in patterns(16, 32, 5) {
            assert_eq!(sim_a.eval(&p), sim_b.eval(&p));
        }
    }

    #[test]
    fn compose_modes_differ_and_build() {
        for mode in 0..3u64 {
            let g = generate("compose", 8, &[("mode".to_owned(), mode)]).unwrap();
            assert!(g.gate_count() > 0, "mode {mode}");
            assert!(g.output_count() > 0, "mode {mode}");
        }
    }
}
