//! The 37-benchmark suite.
//!
//! The paper benchmarks on the 37 MIG netlists of Amarù's TCAD'16 suite
//! (MCNC control circuits + arithmetic cores). Those netlist files are
//! not redistributable/available offline, so this registry reconstructs
//! the suite: real generators for the arithmetic/coding/cipher cores and
//! profile-matched synthetic circuits for the control-dominated names
//! (DESIGN.md, substitution 1). The seven names the paper's Table II
//! reports are present under their original names with generators tuned
//! to the published (size, depth) regime.

use mig::Mig;

use crate::gen::{adders, coding, control, crypto, datapath, misc, multipliers};

/// Coarse circuit family, used for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Adders and adder trees.
    Arithmetic,
    /// Multipliers and MAC units.
    Multiplier,
    /// Error coding: Hamming, CRC, parity, Gray.
    Coding,
    /// Cipher-shaped: S-box networks, ARX pipelines.
    Crypto,
    /// Unrolled datapaths and ALUs.
    Datapath,
    /// Control logic and random profiles.
    Control,
    /// Selection/steering logic: decoders, muxes, shifters, sorters.
    Steering,
}

/// One benchmark: a name, a family tag, and a generator.
#[derive(Clone, Copy, Debug)]
pub struct BenchmarkSpec {
    /// Benchmark name (stable identifier used by the harnesses).
    pub name: &'static str,
    /// Circuit family.
    pub category: Category,
    /// One-line description.
    pub description: &'static str,
    build: fn() -> Mig,
}

impl BenchmarkSpec {
    /// Builds the benchmark circuit (deterministic: same graph every
    /// call).
    pub fn build(&self) -> Mig {
        let mut g = (self.build)();
        g.set_name(self.name);
        g
    }
}

macro_rules! spec {
    ($name:literal, $cat:ident, $desc:literal, $build:expr) => {
        BenchmarkSpec {
            name: $name,
            category: Category::$cat,
            description: $desc,
            build: $build,
        }
    };
}

/// The full 37-circuit suite, smallest-ish to largest-ish.
pub static SUITE: &[BenchmarkSpec] = &[
    // — The seven Table II names —
    spec!(
        "SASC",
        Control,
        "simple asynchronous serial controller profile (paper: 622/6)",
        || { control::sasc_like() }
    ),
    spec!(
        "DES_AREA",
        Crypto,
        "two-round S-box Feistel network (paper: 4187/22)",
        || { crypto::des_like(2) }
    ),
    spec!(
        "MUL32",
        Multiplier,
        "32×32 array multiplier (paper: 9097/36)",
        || { multipliers::array_multiplier(32) }
    ),
    spec!(
        "HAMMING",
        Coding,
        "four chained Hamming(15,11) encode/correct rounds (paper: 2072/61)",
        || { coding::hamming_rounds(4) }
    ),
    spec!(
        "MUL64",
        Multiplier,
        "64×64 array multiplier (paper: 25773/109)",
        || { multipliers::array_multiplier(64) }
    ),
    spec!(
        "REVX",
        Crypto,
        "12-round ARX mixing pipeline (paper: 7517/143)",
        || { crypto::revx(16, 12) }
    ),
    spec!(
        "DIFFEQ1",
        Datapath,
        "three unrolled Euler steps of the HLS diffeq kernel (paper: 17726/219)",
        || { datapath::diffeq(16, 3) }
    ),
    // — Adders —
    spec!("ADD32R", Arithmetic, "32-bit ripple-carry adder", || {
        adders::ripple_adder(32)
    }),
    spec!("ADD32KS", Arithmetic, "32-bit Kogge–Stone adder", || {
        adders::kogge_stone_adder(32)
    }),
    spec!("ADD64KS", Arithmetic, "64-bit Kogge–Stone adder", || {
        adders::kogge_stone_adder(64)
    }),
    spec!(
        "ADDTREE8x8",
        Arithmetic,
        "8-lane 8-bit adder reduction tree",
        || { adders::adder_tree(8, 8) }
    ),
    // — Multipliers —
    spec!("MUL8", Multiplier, "8×8 array multiplier", || {
        multipliers::array_multiplier(8)
    }),
    spec!("MUL16", Multiplier, "16×16 array multiplier", || {
        multipliers::array_multiplier(16)
    }),
    spec!(
        "MUL16W",
        Multiplier,
        "16×16 Wallace-tree multiplier",
        || { multipliers::wallace_multiplier(16) }
    ),
    spec!(
        "MUL32W",
        Multiplier,
        "32×32 Wallace-tree multiplier",
        || { multipliers::wallace_multiplier(32) }
    ),
    spec!("MAC16", Datapath, "16×16 multiply-accumulate", || {
        datapath::mac(16)
    }),
    // — Datapath —
    spec!("ALU16", Datapath, "16-bit 4-op ALU", || datapath::alu(16)),
    spec!("DIFFEQ_S", Datapath, "single Euler step, 12-bit", || {
        datapath::diffeq(12, 1)
    }),
    // — Comparators / counting —
    spec!("CMP32", Arithmetic, "32-bit three-way comparator", || {
        misc::comparator(32)
    }),
    spec!("POP32", Arithmetic, "32-bit population count", || {
        misc::popcount_circuit(32)
    }),
    // — Steering —
    spec!("BSH32", Steering, "32-bit barrel shifter", || {
        misc::barrel_shifter(32)
    }),
    spec!("DEC6", Steering, "6-to-64 one-hot decoder", || {
        misc::decoder(6)
    }),
    spec!(
        "MEDS32x8",
        Steering,
        "8 rounds of 32-lane median smoothing (native majority)",
        || { misc::median_smooth(32, 8) }
    ),
    spec!(
        "SORT16x4",
        Steering,
        "4-stage 16-bit max-of-chain sorter",
        || { misc::sort2_chain(16, 4) }
    ),
    // — Coding —
    spec!("PARITY64", Coding, "64-input parity tree", || {
        coding::parity_tree(64)
    }),
    spec!("CRC8x64", Coding, "CRC-8 over a 64-bit message", || {
        coding::crc(64, 8, 0x07)
    }),
    spec!("GRAY32", Coding, "32-bit binary/Gray round-trip", || {
        coding::gray_roundtrip(32)
    }),
    // — Control / random tail —
    spec!(
        "CTRL40",
        Control,
        "small controller: 4 state bits, 40 control lines",
        || { control::controller(4, 8, 40, 0xA1) }
    ),
    spec!(
        "CTRL80",
        Control,
        "controller: 5 state bits, 80 control lines",
        || { control::controller(5, 10, 80, 0xA2) }
    ),
    spec!(
        "CTRL160",
        Control,
        "controller: 5 state bits, 160 control lines",
        || { control::controller(5, 14, 160, 0xA3) }
    ),
    spec!(
        "CTRL300",
        Control,
        "wide controller: 6 state bits, 300 control lines",
        || { control::controller(6, 18, 300, 0xA4) }
    ),
    spec!(
        "CTRL_BIG",
        Control,
        "large controller: 6 state bits, 200 control lines",
        || { control::controller(6, 16, 200, 0xC7B1) }
    ),
    spec!(
        "RAND1K",
        Control,
        "random MIG, 1 000 gates, depth 9",
        || { control::random_profile("RAND1K", 40, 30, 1_000, 9, 0xB11) }
    ),
    spec!(
        "RAND4K",
        Control,
        "random MIG, 4 000 gates, depth 12",
        || { control::random_profile("RAND4K", 48, 40, 4_000, 12, 0xB12) }
    ),
    spec!(
        "RAND10K",
        Control,
        "random MIG, 10 000 gates, depth 16",
        || { control::random_profile("RAND10K", 56, 48, 10_000, 16, 0xB13) }
    ),
    spec!(
        "RAND20K",
        Control,
        "random MIG, 20 000 gates, depth 24",
        || { control::random_profile("RAND20K", 64, 48, 20_000, 24, 0xB14) }
    ),
    spec!(
        "RAND50K",
        Control,
        "random MIG, 50 000 gates, depth 40 (Fig 5 upper end)",
        || { control::random_profile("RAND50K", 64, 32, 50_000, 40, 0xB16) }
    ),
];

/// Looks a benchmark up by name.
pub fn find(name: &str) -> Option<&'static BenchmarkSpec> {
    SUITE.iter().find(|s| s.name == name)
}

/// Builds the named benchmark circuit, or `None` if the name is not in
/// the suite — the registry lookup a `wavepipe` engine plugs in as its
/// circuit resolver, so flow specs can select circuits by name:
/// `Engine::new().with_resolver(benchsuite::build_mig)`.
///
/// Besides the 37 fixed suite names, every `synth:family:seed[:k=v,…]`
/// name resolves to a seeded synthetic circuit (see [`crate::synth`]),
/// so engine specs — including `CircuitSpec::Synthetic` entries, which
/// arrive here under their canonical name — can sweep an unbounded,
/// deterministic workload space through the same resolver.
pub fn build_mig(name: &str) -> Option<Mig> {
    if name.starts_with("synth:") {
        return crate::synth::build(name);
    }
    find(name).map(BenchmarkSpec::build)
}

/// The seven benchmarks the paper's Table II prints, in its row order.
pub const TABLE2_SELECTION: [&str; 7] = [
    "SASC", "DES_AREA", "MUL32", "HAMMING", "MUL64", "REVX", "DIFFEQ1",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_37_uniquely_named_benchmarks() {
        assert_eq!(SUITE.len(), 37);
        let names: HashSet<&str> = SUITE.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 37, "names must be unique");
    }

    #[test]
    fn table2_selection_is_in_the_suite() {
        for name in TABLE2_SELECTION {
            assert!(find(name).is_some(), "{name} missing");
        }
        assert!(find("NOPE").is_none());
    }

    #[test]
    fn small_benchmarks_build_and_are_nonempty() {
        for spec in SUITE
            .iter()
            .filter(|s| !matches!(s.name, "MUL64" | "DIFFEQ1" | "RAND50K" | "MUL32W" | "REVX"))
        {
            let g = spec.build();
            assert_eq!(g.name(), spec.name);
            assert!(g.gate_count() > 0, "{} is empty", spec.name);
            assert!(g.output_count() > 0, "{} has no outputs", spec.name);
            assert!(g.depth() > 0, "{} has depth 0", spec.name);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = find("SASC").unwrap().build();
        let b = find("SASC").unwrap().build();
        assert_eq!(mig::write_mig(&a), mig::write_mig(&b));
    }

    #[test]
    fn build_mig_resolves_names_like_a_spec_resolver() {
        let g = build_mig("SASC").expect("in the suite");
        assert_eq!(g.name(), "SASC");
        assert!(build_mig("NOPE").is_none());
    }

    #[test]
    fn suite_spans_the_fig5_size_range() {
        // Fig 5's x-axis runs 10²..10⁵; check the suite covers it using
        // the cheap benchmarks plus the documented big ones' targets.
        let small = SUITE
            .iter()
            .filter(|s| !matches!(s.name, "MUL64" | "DIFFEQ1" | "RAND50K"))
            .map(|s| s.build().gate_count())
            .min()
            .unwrap();
        assert!(small < 1000, "smallest benchmark {small}");
        // RAND50K targets 50k gates by construction; MUL64 lands above
        // 10⁴ (asserted in the multiplier module's profile test).
    }
}
