//! Graphviz DOT export for visual inspection of small MIGs.

use crate::graph::Mig;
use crate::node::Node;

/// Renders `graph` as a Graphviz `digraph`.
///
/// Majority gates are ellipses, inputs are boxes, outputs are double
/// octagons; complemented edges are drawn dashed with an odot arrowhead
/// (the usual MIG/AIG convention).
///
/// # Examples
///
/// ```
/// use mig::{to_dot, Mig};
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let f = g.add_and(a, b);
/// g.add_output("f", f);
/// let dot = to_dot(&g);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("MAJ"));
/// ```
pub fn to_dot(graph: &Mig) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", graph.name()));
    out.push_str("  rankdir=BT;\n");
    out.push_str("  node [fontname=\"Helvetica\"];\n");

    let mut const_used = false;
    for id in graph.node_ids() {
        if let Node::Majority(f) = graph.node(id) {
            const_used |= f.iter().any(|s| s.is_const());
        }
    }
    const_used |= graph.outputs().iter().any(|o| o.signal.is_const());
    if const_used {
        out.push_str("  n0 [label=\"0\", shape=plaintext];\n");
    }

    for id in graph.node_ids() {
        match graph.node(id) {
            Node::Constant => {}
            Node::Input(pos) => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\", shape=box];\n",
                    id.index(),
                    graph.input_name(*pos as usize)
                ));
            }
            Node::Majority(f) => {
                out.push_str(&format!(
                    "  n{} [label=\"MAJ\", shape=ellipse];\n",
                    id.index()
                ));
                for s in f {
                    let style = if s.is_complement() {
                        " [style=dashed, arrowhead=odot]"
                    } else {
                        ""
                    };
                    out.push_str(&format!(
                        "  n{} -> n{}{};\n",
                        s.node().index(),
                        id.index(),
                        style
                    ));
                }
            }
        }
    }

    for (i, o) in graph.outputs().iter().enumerate() {
        out.push_str(&format!(
            "  po{} [label=\"{}\", shape=doubleoctagon];\n",
            i, o.name
        ));
        let style = if o.signal.is_complement() {
            " [style=dashed, arrowhead=odot]"
        } else {
            ""
        };
        out.push_str(&format!(
            "  n{} -> po{}{};\n",
            o.signal.node().index(),
            i,
            style
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_elements() {
        let mut g = Mig::with_name("viz");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m = g.add_maj(a, !b, c);
        g.add_output("f", !m);

        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"viz\""));
        assert!(dot.contains("shape=box"), "inputs rendered");
        assert!(dot.contains("MAJ"), "gates rendered");
        assert!(dot.contains("doubleoctagon"), "outputs rendered");
        assert!(dot.contains("arrowhead=odot"), "complement edges marked");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn constant_node_only_when_used() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_maj(a, b, crate::Signal::ZERO);
        g.add_output("f", m);
        assert!(to_dot(&g).contains("n0 [label=\"0\""));

        let mut h = Mig::new();
        let a = h.add_input("a");
        let b = h.add_input("b");
        let c = h.add_input("c");
        let m = h.add_maj(a, b, c);
        h.add_output("f", m);
        assert!(!to_dot(&h).contains("n0 [label=\"0\""));
    }
}
