//! The textual `.mig` netlist format.
//!
//! A small, line-oriented format in the spirit of BLIF:
//!
//! ```text
//! # comment
//! .model adder
//! .inputs a b cin
//! .outputs sum cout
//! n1 = MAJ(a, b, cin)
//! n2 = MAJ(a, b, !cin)
//! n3 = MAJ(!n1, n2, cin)
//! sum = n3
//! cout = n1
//! ```
//!
//! Identifiers match `[A-Za-z_][A-Za-z0-9_.\[\]]*`; `0` and `1` denote
//! constants; `!` prefixes complement an operand. Every gate must be
//! defined before use (topological order), and output lines bind a
//! declared output name to a signal.

use std::collections::HashMap;
use std::fmt;

use crate::graph::Mig;
use crate::node::Node;
use crate::signal::Signal;

/// Errors produced by [`parse_mig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseMigError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseMigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseMigError {}

fn err(line: usize, message: impl Into<String>) -> ParseMigError {
    ParseMigError {
        line,
        message: message.into(),
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || "_.[]".contains(c))
}

/// Parses the `.mig` text format.
///
/// # Errors
///
/// Returns [`ParseMigError`] (with a line number) on syntax errors,
/// references to undefined signals, redefinitions, or missing
/// input/output declarations.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mig::ParseMigError> {
/// let src = "\
/// .model tiny
/// .inputs a b c
/// .outputs f
/// g = MAJ(a, !b, c)
/// f = !g
/// ";
/// let g = mig::parse_mig(src)?;
/// assert_eq!(g.gate_count(), 1);
/// assert_eq!(g.name(), "tiny");
/// # Ok(())
/// # }
/// ```
pub fn parse_mig(source: &str) -> Result<Mig, ParseMigError> {
    let mut graph = Mig::new();
    let mut signals: HashMap<String, Signal> = HashMap::new();
    let mut declared_outputs: Vec<String> = Vec::new();
    let mut bound_outputs: HashMap<String, Signal> = HashMap::new();
    let mut saw_model = false;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix(".model") {
            if saw_model {
                return Err(err(lineno, "duplicate .model directive"));
            }
            saw_model = true;
            let name = rest.trim();
            if name.is_empty() {
                return Err(err(lineno, ".model requires a name"));
            }
            graph.set_name(name);
        } else if let Some(rest) = line.strip_prefix(".inputs") {
            for name in rest.split_whitespace() {
                if !is_ident(name) {
                    return Err(err(lineno, format!("invalid input name `{name}`")));
                }
                if signals.contains_key(name) {
                    return Err(err(lineno, format!("duplicate signal `{name}`")));
                }
                let s = graph.add_input(name);
                signals.insert(name.to_owned(), s);
            }
        } else if let Some(rest) = line.strip_prefix(".outputs") {
            for name in rest.split_whitespace() {
                if !is_ident(name) {
                    return Err(err(lineno, format!("invalid output name `{name}`")));
                }
                if declared_outputs.iter().any(|n| n == name) {
                    return Err(err(lineno, format!("duplicate output `{name}`")));
                }
                declared_outputs.push(name.to_owned());
            }
        } else if line.starts_with('.') {
            return Err(err(lineno, format!("unknown directive `{line}`")));
        } else {
            // `name = MAJ(a, b, c)` or `name = signal`
            let (lhs, rhs) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, "expected `name = ...`"))?;
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            if !is_ident(lhs) {
                return Err(err(lineno, format!("invalid signal name `{lhs}`")));
            }

            let value =
                if let Some(args) = rhs.strip_prefix("MAJ(").and_then(|r| r.strip_suffix(')')) {
                    let operands: Vec<&str> = args.split(',').map(str::trim).collect();
                    if operands.len() != 3 {
                        return Err(err(
                            lineno,
                            format!("MAJ takes exactly 3 operands, found {}", operands.len()),
                        ));
                    }
                    let mut resolved = [Signal::ZERO; 3];
                    for (i, op) in operands.iter().enumerate() {
                        resolved[i] = resolve(op, &signals)
                            .ok_or_else(|| err(lineno, format!("undefined signal `{op}`")))?;
                    }
                    graph.add_maj(resolved[0], resolved[1], resolved[2])
                } else {
                    resolve(rhs, &signals)
                        .ok_or_else(|| err(lineno, format!("undefined signal `{rhs}`")))?
                };

            if declared_outputs.iter().any(|n| n == lhs) {
                if bound_outputs.insert(lhs.to_owned(), value).is_some() {
                    return Err(err(lineno, format!("output `{lhs}` bound twice")));
                }
                // An output name may also be referenced as an internal signal.
                signals.entry(lhs.to_owned()).or_insert(value);
            } else {
                if signals.contains_key(lhs) {
                    return Err(err(lineno, format!("signal `{lhs}` redefined")));
                }
                signals.insert(lhs.to_owned(), value);
            }
        }
    }

    for name in &declared_outputs {
        let s = *bound_outputs
            .get(name)
            .ok_or_else(|| err(0, format!("declared output `{name}` never bound")))?;
        graph.add_output(name.clone(), s);
    }
    Ok(graph)
}

fn resolve(token: &str, signals: &HashMap<String, Signal>) -> Option<Signal> {
    let (compl, name) = match token.strip_prefix('!') {
        Some(rest) => (true, rest.trim()),
        None => (false, token),
    };
    let base = match name {
        "0" => Signal::ZERO,
        "1" => Signal::ONE,
        _ => *signals.get(name)?,
    };
    Some(base.complement_if(compl))
}

/// Serializes `graph` into the `.mig` text format.
///
/// The output round-trips through [`parse_mig`] to an isomorphic graph.
pub fn write_mig(graph: &Mig) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", graph.name()));
    out.push_str(".inputs");
    for pos in 0..graph.input_count() {
        out.push(' ');
        out.push_str(graph.input_name(pos));
    }
    out.push('\n');
    out.push_str(".outputs");
    for o in graph.outputs() {
        out.push(' ');
        out.push_str(&o.name);
    }
    out.push('\n');

    let fmt_signal = |s: Signal, graph: &Mig| -> String {
        let name = match graph.node(s.node()) {
            Node::Constant => "0".to_owned(),
            Node::Input(pos) => graph.input_name(*pos as usize).to_owned(),
            Node::Majority(_) => format!("g{}", s.node().index()),
        };
        if s.is_complement() {
            format!("!{name}")
        } else {
            name
        }
    };

    for id in graph.gate_ids() {
        let Node::Majority(f) = graph.node(id) else {
            unreachable!("gate_ids yields gates");
        };
        out.push_str(&format!(
            "g{} = MAJ({}, {}, {})\n",
            id.index(),
            fmt_signal(f[0], graph),
            fmt_signal(f[1], graph),
            fmt_signal(f[2], graph),
        ));
    }
    for o in graph.outputs() {
        out.push_str(&format!("{} = {}\n", o.name, fmt_signal(o.signal, graph)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::check_equivalence;

    #[test]
    fn roundtrip_preserves_function() {
        let mut g = Mig::with_name("rt");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let (s, cy) = g.add_full_adder(a, !b, c);
        g.add_output("sum", s);
        g.add_output("cout", !cy);

        let text = write_mig(&g);
        let parsed = parse_mig(&text).expect("own output parses");
        assert_eq!(parsed.name(), "rt");
        assert!(check_equivalence(&g, &parsed).unwrap().holds());
    }

    #[test]
    fn constants_parse() {
        let g =
            parse_mig(".model c\n.inputs a b\n.outputs f\nx = MAJ(a, b, 0)\nf = MAJ(x, !b, 1)\n")
                .unwrap();
        assert_eq!(g.gate_count(), 2);
    }

    #[test]
    fn output_can_be_an_input_alias() {
        let g = parse_mig(".model alias\n.inputs a\n.outputs f\nf = !a\n").unwrap();
        assert_eq!(g.gate_count(), 0);
        assert_eq!(g.output_count(), 1);
        assert!(g.outputs()[0].signal.is_complement());
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_mig(".model x\n.inputs a\n.outputs f\nf = MAJ(a, q, 0)\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("undefined signal `q`"));
        assert!(e.to_string().starts_with("line 4:"));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let e = parse_mig(".model x\n.inputs a b\n.outputs f\nf = MAJ(a, b)\n").unwrap_err();
        assert!(e.message.contains("exactly 3 operands"));
    }

    #[test]
    fn unbound_output_is_rejected() {
        let e = parse_mig(".model x\n.inputs a\n.outputs f g\nf = a\n").unwrap_err();
        assert!(e.message.contains("never bound"));
    }

    #[test]
    fn redefinition_is_rejected() {
        let e = parse_mig(
            ".model x\n.inputs a b\n.outputs f\nt = MAJ(a, b, 0)\nt = MAJ(a, b, 1)\nf = t\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("redefined"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = parse_mig(
            "# header\n\n.model c # trailing\n.inputs a b c\n.outputs f\n\nf = MAJ(a, b, c) # gate\n",
        )
        .unwrap();
        assert_eq!(g.gate_count(), 1);
    }

    #[test]
    fn duplicate_model_rejected() {
        let e = parse_mig(".model a\n.model b\n").unwrap_err();
        assert!(e.message.contains("duplicate .model"));
    }
}
