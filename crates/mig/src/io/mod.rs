//! Interchange formats: a textual `.mig` netlist format (read/write),
//! Graphviz DOT export and structural Verilog export.

mod dot;
mod text;
mod verilog;

pub use dot::to_dot;
pub use text::{parse_mig, write_mig, ParseMigError};
pub use verilog::to_verilog;
