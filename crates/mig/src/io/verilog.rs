//! Structural Verilog export.
//!
//! Emits a gate-level module where each majority node becomes an
//! `assign` of the expanded majority expression; useful for feeding MIG
//! results into conventional EDA tooling.

use crate::graph::Mig;
use crate::node::Node;
use crate::signal::Signal;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders `graph` as a synthesizable Verilog module.
///
/// # Examples
///
/// ```
/// use mig::{to_verilog, Mig};
///
/// let mut g = Mig::with_name("maj3");
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let c = g.add_input("c");
/// let m = g.add_maj(a, b, c);
/// g.add_output("f", m);
/// let v = to_verilog(&g);
/// assert!(v.contains("module maj3"));
/// assert!(v.contains("assign"));
/// ```
pub fn to_verilog(graph: &Mig) -> String {
    let mut out = String::new();
    let ports: Vec<String> = (0..graph.input_count())
        .map(|p| sanitize(graph.input_name(p)))
        .chain(graph.outputs().iter().map(|o| sanitize(&o.name)))
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        sanitize(graph.name()),
        ports.join(", ")
    ));
    for p in 0..graph.input_count() {
        out.push_str(&format!("  input {};\n", sanitize(graph.input_name(p))));
    }
    for o in graph.outputs() {
        out.push_str(&format!("  output {};\n", sanitize(&o.name)));
    }

    let operand = |s: Signal, graph: &Mig| -> String {
        let base = match graph.node(s.node()) {
            Node::Constant => "1'b0".to_owned(),
            Node::Input(pos) => sanitize(graph.input_name(*pos as usize)),
            Node::Majority(_) => format!("w{}", s.node().index()),
        };
        if s.is_complement() {
            format!("~{base}")
        } else {
            base
        }
    };

    for id in graph.gate_ids() {
        out.push_str(&format!("  wire w{};\n", id.index()));
    }
    for id in graph.gate_ids() {
        let Node::Majority(f) = graph.node(id) else {
            unreachable!("gate_ids yields gates");
        };
        let (a, b, c) = (
            operand(f[0], graph),
            operand(f[1], graph),
            operand(f[2], graph),
        );
        out.push_str(&format!(
            "  assign w{} = ({a} & {b}) | ({a} & {c}) | ({b} & {c});\n",
            id.index()
        ));
    }
    for o in graph.outputs() {
        out.push_str(&format!(
            "  assign {} = {};\n",
            sanitize(&o.name),
            operand(o.signal, graph)
        ));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_shape() {
        let mut g = Mig::with_name("fa");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("cin");
        let (s, cy) = g.add_full_adder(a, b, c);
        g.add_output("sum", s);
        g.add_output("cout", cy);

        let v = to_verilog(&g);
        assert!(v.starts_with("module fa (a, b, cin, sum, cout);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output cout;"));
        assert_eq!(v.matches("assign").count(), g.gate_count() + 2);
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn complemented_operands_and_constants() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_maj(a, !b, Signal::ZERO);
        g.add_output("f", !m);
        let v = to_verilog(&g);
        assert!(v.contains("~b"));
        assert!(v.contains("1'b0"), "constant zero fan-in rendered");
        assert!(v.contains("assign f = ~w"));
    }

    #[test]
    fn names_are_sanitized() {
        let mut g = Mig::with_name("top-level");
        let a = g.add_input("in[0]");
        g.add_output("out.x", a);
        let v = to_verilog(&g);
        assert!(v.contains("module top_level"));
        assert!(v.contains("in_0_"));
        assert!(v.contains("out_x"));
    }
}
