//! The Majority-Inverter Graph container.

use std::collections::HashMap;
use std::fmt;

use crate::fnv::FnvBuildHasher;
use crate::node::Node;
use crate::signal::{NodeId, Signal};

/// A named primary output: a signal plus its port name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Output {
    /// Port name (unique within a graph).
    pub name: String,
    /// Driving signal (may be complemented or constant).
    pub signal: Signal,
}

/// A Majority-Inverter Graph: a homogeneous logic network of 3-input
/// majority nodes with regular/complemented edges (Amarù et al.,
/// DAC'14 / TCAD'16).
///
/// Nodes live in an arena; node 0 is the constant zero. Fan-ins always
/// point backwards in the arena, so iterating nodes by index is a
/// topological traversal. Gate creation goes through [`Mig::add_maj`],
/// which constant-folds, applies the trivial majority axioms and
/// structurally hashes, so the graph never stores two identical gates.
///
/// # Examples
///
/// Build a full-adder carry (which *is* a majority gate) and inspect it:
///
/// ```
/// use mig::Mig;
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let cin = g.add_input("cin");
/// let carry = g.add_maj(a, b, cin);
/// g.add_output("cout", carry);
///
/// assert_eq!(g.gate_count(), 1);
/// assert_eq!(g.depth(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mig {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    outputs: Vec<Output>,
    /// Structural-hash table keyed on normalized fan-in triples. FNV-1a
    /// instead of SipHash: the 12-byte keys are queried once per gate
    /// construction, where SipHash's per-lookup setup dominates.
    strash: HashMap<[Signal; 3], NodeId, FnvBuildHasher>,
}

impl Mig {
    /// Creates an empty graph containing only the constant node.
    pub fn new() -> Mig {
        Mig::with_name("top")
    }

    /// Creates an empty graph with the given model name.
    pub fn with_name(name: impl Into<String>) -> Mig {
        Mig {
            name: name.into(),
            nodes: vec![Node::Constant],
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::default(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the model name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input and returns its (non-complemented) signal.
    ///
    /// # Panics
    ///
    /// Panics if `name` duplicates an existing input name.
    pub fn add_input(&mut self, name: impl Into<String>) -> Signal {
        let name = name.into();
        assert!(
            !self.input_names.contains(&name),
            "duplicate input name `{name}`"
        );
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node::Input(self.inputs.len() as u32));
        self.inputs.push(id);
        self.input_names.push(name);
        id.signal()
    }

    /// Adds `count` inputs named `prefix0..prefixN` and returns their
    /// signals.
    pub fn add_inputs(&mut self, prefix: &str, count: usize) -> Vec<Signal> {
        (0..count)
            .map(|i| self.add_input(format!("{prefix}{i}")))
            .collect()
    }

    /// Registers `signal` as a primary output named `name`.
    pub fn add_output(&mut self, name: impl Into<String>, signal: Signal) {
        self.outputs.push(Output {
            name: name.into(),
            signal,
        });
    }

    /// Creates (or reuses) the majority gate `⟨a b c⟩`.
    ///
    /// The following normalizations are applied before a node is
    /// created, in order:
    ///
    /// 1. **Majority axiom** `⟨x x y⟩ = x` and **complement axiom**
    ///    `⟨x x̄ y⟩ = y` — no gate is needed.
    /// 2. **Constant folding** via the same two axioms when fan-ins are
    ///    constant signals.
    /// 3. **Self-duality** `⟨x̄ ȳ z̄⟩ = ¬⟨x y z⟩`: if two or more fan-ins
    ///    are complemented, all three are flipped and the output signal
    ///    is complemented instead, so at most one stored fan-in carries
    ///    an inverter.
    /// 4. **Commutativity**: fan-ins are sorted, then structural hashing
    ///    reuses any existing identical gate.
    pub fn add_maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        // Trivial axioms: two equal fan-ins decide the vote; a
        // complementary pair cancels out.
        if a == b {
            return a;
        }
        if a == !b {
            return c;
        }
        if a == c {
            return a;
        }
        if a == !c {
            return b;
        }
        if b == c {
            return b;
        }
        if b == !c {
            return a;
        }

        // Self-duality: keep at most one complemented fan-in.
        let ncompl = a.is_complement() as u32 + b.is_complement() as u32 + c.is_complement() as u32;
        let (mut a, mut b, mut c, out_compl) = if ncompl >= 2 {
            (!a, !b, !c, true)
        } else {
            (a, b, c, false)
        };

        // Commutativity: canonical fan-in order.
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if b > c {
            std::mem::swap(&mut b, &mut c);
        }
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }

        let key = [a, b, c];
        let id = match self.strash.get(&key) {
            Some(&id) => id,
            None => {
                let id = NodeId::from_index(self.nodes.len());
                self.nodes.push(Node::Majority(key));
                self.strash.insert(key, id);
                id
            }
        };
        Signal::new(id, out_compl)
    }

    /// Number of nodes in the arena (constant + inputs + gates).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of majority gates.
    ///
    /// This is the "size" metric used throughout the paper.
    pub fn gate_count(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The node payload at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Primary input node ids, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Name of input `position` (declaration order).
    pub fn input_name(&self, position: usize) -> &str {
        &self.input_names[position]
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Replaces the signal of output `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.output_count()`.
    pub fn set_output_signal(&mut self, position: usize, signal: Signal) {
        self.outputs[position].signal = signal;
    }

    /// Removes and returns output `position`; later outputs shift down
    /// one position (`Vec::remove` semantics). The driving cone stays in
    /// the arena — [`Mig::cleanup`] reclaims it if nothing else uses it.
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.output_count()`.
    pub fn remove_output(&mut self, position: usize) -> Output {
        self.outputs.remove(position)
    }

    /// Stable structural content hash: graph name, arena length, every
    /// node (kind, input position, fan-in signals with complement bits),
    /// input names and output bindings — everything a flow over this
    /// graph can observe. One O(nodes) arena walk, no intermediate
    /// serialization; this is the circuit axis of the engine cache key
    /// in the companion `wavepipe` crate.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::fnv::Fnv64::new();
        h.write(self.name.as_bytes());
        h.write_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            match node {
                Node::Constant => h.write(b"c"),
                Node::Input(position) => {
                    h.write(b"i");
                    h.write_u64(u64::from(*position));
                }
                Node::Majority(fanins) => {
                    h.write(b"m");
                    for signal in fanins {
                        h.write_u64(u64::from(signal.to_raw()));
                    }
                }
            }
        }
        for name in &self.input_names {
            h.write(name.as_bytes());
            h.write(&[0]);
        }
        for output in &self.outputs {
            h.write(output.name.as_bytes());
            h.write(&[0]);
            h.write_u64(u64::from(output.signal.to_raw()));
        }
        h.finish()
    }

    /// Iterates over all node ids in topological (arena) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over the ids of majority gates in topological order.
    pub fn gate_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |id| self.nodes[id.index()].is_gate())
    }

    /// Per-node logic level: constants and inputs are level 0, a gate is
    /// one more than its deepest fan-in.
    ///
    /// Indexed by `NodeId::index()`.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Node::Majority(fanins) = node {
                levels[idx] = 1 + fanins
                    .iter()
                    .map(|s| levels[s.node().index()])
                    .max()
                    .expect("majority nodes have fan-ins");
            }
        }
        levels
    }

    /// Depth of the graph: the maximum level over all primary outputs.
    ///
    /// A graph whose outputs are all constants or inputs has depth 0.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.signal.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Number of fan-out references per node (uses by gates plus uses by
    /// primary outputs). Indexed by `NodeId::index()`.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for s in node.fanins() {
                counts[s.node().index()] += 1;
            }
        }
        for o in &self.outputs {
            counts[o.signal.node().index()] += 1;
        }
        counts
    }

    /// Returns a copy of this graph containing only nodes reachable from
    /// the primary outputs (dead gates dropped, inputs always kept).
    ///
    /// Gate identity is not preserved; signals are remapped internally.
    pub fn cleanup(&self) -> Mig {
        let mut out = Mig::with_name(self.name.clone());
        let mut map: Vec<Option<Signal>> = vec![None; self.nodes.len()];
        map[NodeId::CONST.index()] = Some(Signal::ZERO);
        for (pos, &id) in self.inputs.iter().enumerate() {
            map[id.index()] = Some(out.add_input(self.input_names[pos].clone()));
        }

        // Mark reachable gates.
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|o| o.signal.node()).collect();
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            for s in self.nodes[id.index()].fanins() {
                if !live[s.node().index()] {
                    stack.push(s.node());
                }
            }
        }

        for (idx, node) in self.nodes.iter().enumerate() {
            if !live[idx] {
                continue;
            }
            if let Node::Majority(fanins) = node {
                let f: Vec<Signal> = fanins
                    .iter()
                    .map(|s| {
                        map[s.node().index()]
                            .expect("fan-ins precede their gate")
                            .complement_if(s.is_complement())
                    })
                    .collect();
                map[idx] = Some(out.add_maj(f[0], f[1], f[2]));
            }
        }

        for o in &self.outputs {
            let s = map[o.signal.node().index()]
                .expect("reachable output driver")
                .complement_if(o.signal.is_complement());
            out.add_output(o.name.clone(), s);
        }
        out
    }
}

impl fmt::Display for Mig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mig `{}`: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.input_count(),
            self.output_count(),
            self.gate_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_only_constant() {
        let g = Mig::new();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.gate_count(), 0);
        assert_eq!(g.depth(), 0);
        assert!(g.node(NodeId::CONST).is_constant());
    }

    #[test]
    fn trivial_axioms_avoid_gate_creation() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        assert_eq!(g.add_maj(a, a, b), a, "⟨x x y⟩ = x");
        assert_eq!(g.add_maj(a, !a, b), b, "⟨x x̄ y⟩ = y");
        assert_eq!(g.add_maj(b, a, a), a);
        assert_eq!(g.add_maj(Signal::ZERO, Signal::ONE, a), a);
        assert_eq!(g.gate_count(), 0);
    }

    #[test]
    fn structural_hashing_reuses_commutative_variants() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m1 = g.add_maj(a, b, c);
        let m2 = g.add_maj(c, a, b);
        let m3 = g.add_maj(b, c, a);
        assert_eq!(m1, m2);
        assert_eq!(m1, m3);
        assert_eq!(g.gate_count(), 1);
    }

    #[test]
    fn self_duality_normalizes_polarity() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m = g.add_maj(a, b, c);
        let dual = g.add_maj(!a, !b, !c);
        assert_eq!(dual, !m, "⟨x̄ ȳ z̄⟩ = ¬⟨x y z⟩ shares one node");
        assert_eq!(g.gate_count(), 1);
    }

    #[test]
    fn levels_and_depth() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m1 = g.add_maj(a, b, c);
        let m2 = g.add_maj(m1, a, b);
        g.add_output("f", m2);
        let levels = g.levels();
        assert_eq!(levels[m1.node().index()], 1);
        assert_eq!(levels[m2.node().index()], 2);
        assert_eq!(g.depth(), 2);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m = g.add_maj(a, b, c);
        g.add_output("f", m);
        g.add_output("g", !m);
        let fo = g.fanout_counts();
        assert_eq!(fo[m.node().index()], 2);
        assert_eq!(fo[a.node().index()], 1);
    }

    #[test]
    fn cleanup_drops_dead_gates() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let live = g.add_maj(a, b, c);
        let _dead = g.add_maj(a, b, !c);
        g.add_output("f", live);
        assert_eq!(g.gate_count(), 2);
        let clean = g.cleanup();
        assert_eq!(clean.gate_count(), 1);
        assert_eq!(clean.input_count(), 3);
        assert_eq!(clean.output_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate input name")]
    fn duplicate_input_names_panic() {
        let mut g = Mig::new();
        g.add_input("a");
        g.add_input("a");
    }
}
