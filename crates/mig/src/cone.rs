//! Per-output cone content identity — the subgraph granularity of the
//! incremental (ECO) engine in the companion `wavepipe` crate.
//!
//! A MIG decomposes naturally into **output cones**: the transitive
//! fan-in of each primary output. [`ConePartition::analyze`] assigns
//! every cone a stable content hash built from per-node merkle hashes
//! (a node's hash folds its kind, its input name, and its fan-ins'
//! hashes with complement bits), so structurally identical cones hash
//! equal *regardless of where they sit in the arena or what the rest of
//! the graph looks like*. An ECO edit therefore needs no explicit dirty
//! marking: unchanged cones keep their hash and hit caches keyed by it,
//! changed cones miss and recompute.
//!
//! For shared logic the partition also folds **level-band subhashes** —
//! the arena split into horizontal bands of [`ConePartition::band_width`]
//! logic levels, each band hashed over its members in arena order — so
//! callers can localize *where* in the depth profile two graph versions
//! diverge ([`ConePartition::dirty_bands`]) even when many cones overlap
//! the changed region.
//!
//! [`extract_cone`] materializes one cone as a self-contained [`Mig`]
//! with canonical graph/output names: the extraction is a deterministic
//! replay in arena order, so two cones with equal hashes extract to
//! byte-identical graphs — the property that makes the extracted cone a
//! sound cache key for downstream pipeline results.
//!
//! ```
//! use mig::{ConePartition, Mig};
//!
//! let mut g = Mig::with_name("two-cones");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let c = g.add_input("c");
//! let and = g.add_and(a, b);
//! let or = g.add_or(b, c);
//! g.add_output("and", and);
//! g.add_output("or", or);
//!
//! let before = ConePartition::analyze(&g);
//! assert_eq!(before.len(), 2);
//!
//! // Rewiring one output dirties exactly that cone's hash.
//! let mut edited = g.clone();
//! edited.set_output_signal(0, !edited.outputs()[0].signal);
//! let after = ConePartition::analyze(&edited);
//! assert_ne!(before.cones()[0].hash, after.cones()[0].hash);
//! assert_eq!(before.cones()[1].hash, after.cones()[1].hash);
//! ```

use std::collections::HashMap;

use crate::fnv::Fnv64;
use crate::graph::Mig;
use crate::node::Node;
use crate::signal::{NodeId, Signal};

/// Default height (in logic levels) of one level band — wide enough
/// that band bookkeeping stays negligible next to the per-node hash
/// pass, narrow enough to localize an edit within a deep pipeline.
pub const DEFAULT_BAND_WIDTH: u32 = 8;

/// The canonical name given to every extracted cone graph and its
/// single output, so structurally equal cones extract byte-identically
/// and share downstream cache entries.
pub const CONE_NAME: &str = "cone";

/// One primary output's transitive fan-in, summarized by content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cone {
    /// Output position in the source graph.
    pub output: usize,
    /// Output name in the source graph (cone hashes deliberately do
    /// *not* cover it, so renaming an output keeps its cone clean).
    pub name: String,
    /// Content hash of the cone: the per-node merkle hashes of every
    /// cone member folded in arena order, plus the root's polarity.
    /// Equal hashes ⇒ [`extract_cone`] yields byte-identical graphs.
    pub hash: u64,
    /// Majority gates in the cone (inputs/constants excluded).
    pub gates: usize,
    /// The signal driving the output — the cone's identity anchor for
    /// incremental re-analysis ([`ConePartition::refresh`]): in an
    /// append-only arena, an unchanged root signal pins an unchanged
    /// cone.
    pub root: Signal,
}

/// A graph's decomposition into per-output cones plus level-band
/// subhashes. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct ConePartition {
    cones: Vec<Cone>,
    band_hashes: Vec<u64>,
    band_width: u32,
    node_hashes: Vec<u64>,
}

impl ConePartition {
    /// Analyzes `graph` with the [`DEFAULT_BAND_WIDTH`].
    pub fn analyze(graph: &Mig) -> ConePartition {
        ConePartition::with_band_width(graph, DEFAULT_BAND_WIDTH)
    }

    /// Analyzes `graph` with `band_width` logic levels per band.
    ///
    /// # Panics
    ///
    /// Panics if `band_width == 0`.
    pub fn with_band_width(graph: &Mig, band_width: u32) -> ConePartition {
        assert!(band_width > 0, "band width must be positive");
        let mut node_hashes = Vec::new();
        extend_node_hashes(graph, &mut node_hashes);
        ConePartition::build(graph, band_width, node_hashes, &HashMap::new())
    }

    /// Re-analyzes `graph` reusing this partition's work: per-node
    /// hashes are extended (never recomputed — arena prefixes are
    /// immutable) and any cone whose root [`Signal`] matches one of this
    /// partition's keeps its hash and gate count without a traversal.
    /// For an ECO session this turns the per-run analysis from
    /// `O(Σ cone sizes)` into `O(new nodes + dirty cones)` plus the
    /// `O(nodes)` band fold.
    ///
    /// `graph` must be an **append-only extension** of the graph this
    /// partition analyzed: the arena prefix of the analyzed length is
    /// byte-identical and edits only appended nodes or retargeted
    /// outputs ([`Mig`]'s whole mutation surface). Analyzing an
    /// unrelated graph that happens to be longer is not detected and
    /// yields garbage cone identities.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has fewer nodes than the analyzed graph (which
    /// is never an extension of it).
    pub fn refresh(&self, graph: &Mig) -> ConePartition {
        assert!(
            self.node_hashes.len() <= graph.node_count(),
            "refresh target has fewer nodes than the analyzed graph"
        );
        let mut node_hashes = self.node_hashes.clone();
        extend_node_hashes(graph, &mut node_hashes);
        let known: HashMap<Signal, (u64, usize)> = self
            .cones
            .iter()
            .map(|c| (c.root, (c.hash, c.gates)))
            .collect();
        ConePartition::build(graph, self.band_width, node_hashes, &known)
    }

    fn build(
        graph: &Mig,
        band_width: u32,
        node_hashes: Vec<u64>,
        known: &HashMap<Signal, (u64, usize)>,
    ) -> ConePartition {
        // Level bands: fold every node's hash into its level's band, in
        // arena order (the per-band accumulator sees nodes in the same
        // order an arena walk does, so the subhash is stable).
        let levels = graph.levels();
        let bands = levels
            .iter()
            .map(|&l| (l / band_width) as usize)
            .max()
            .map_or(0, |top| top + 1);
        let mut accums = vec![Fnv64::new(); bands];
        for (idx, &level) in levels.iter().enumerate() {
            accums[(level / band_width) as usize].write_u64(node_hashes[idx]);
        }
        let band_hashes = accums.iter().map(Fnv64::finish).collect();

        // Per-output cones: marked DFS (output index as the mark epoch)
        // collecting members, then an arena-order fold. Fan-ins always
        // point backwards, so the root is the member with the highest
        // arena index and the fold determines the cone up to hash
        // collisions. Roots already summarized in `known` skip the
        // traversal entirely.
        let mut seen = vec![usize::MAX; graph.node_count()];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut members: Vec<u32> = Vec::new();
        let cones = graph
            .outputs()
            .iter()
            .enumerate()
            .map(|(position, output)| {
                if let Some(&(hash, gates)) = known.get(&output.signal) {
                    return Cone {
                        output: position,
                        name: output.name.clone(),
                        hash,
                        gates,
                        root: output.signal,
                    };
                }
                members.clear();
                stack.push(output.signal.node());
                while let Some(id) = stack.pop() {
                    if seen[id.index()] == position {
                        continue;
                    }
                    seen[id.index()] = position;
                    members.push(id.index() as u32);
                    for s in graph.node(id).fanins() {
                        if seen[s.node().index()] != position {
                            stack.push(s.node());
                        }
                    }
                }
                members.sort_unstable();
                let mut h = Fnv64::new();
                h.write(b"cone");
                h.write(&[u8::from(output.signal.is_complement())]);
                let mut gates = 0;
                for &m in &members {
                    h.write_u64(node_hashes[m as usize]);
                    if matches!(
                        graph.node(NodeId::from_index(m as usize)),
                        Node::Majority(_)
                    ) {
                        gates += 1;
                    }
                }
                Cone {
                    output: position,
                    name: output.name.clone(),
                    hash: h.finish(),
                    gates,
                    root: output.signal,
                }
            })
            .collect();

        ConePartition {
            cones,
            band_hashes,
            band_width,
            node_hashes,
        }
    }

    /// The cones, one per primary output, in output order.
    pub fn cones(&self) -> &[Cone] {
        &self.cones
    }

    /// Number of cones (= primary outputs of the analyzed graph).
    pub fn len(&self) -> usize {
        self.cones.len()
    }

    /// Whether the analyzed graph had no outputs.
    pub fn is_empty(&self) -> bool {
        self.cones.is_empty()
    }

    /// Level-band subhashes, band 0 (levels `0..band_width`) first.
    pub fn band_hashes(&self) -> &[u64] {
        &self.band_hashes
    }

    /// Height of one level band, in logic levels.
    pub fn band_width(&self) -> u32 {
        self.band_width
    }

    /// Indices of level bands whose subhash differs from `earlier`'s —
    /// where in the depth profile the two graph versions diverge. Bands
    /// present on only one side count as dirty.
    pub fn dirty_bands(&self, earlier: &ConePartition) -> Vec<usize> {
        let common = self.band_hashes.len().min(earlier.band_hashes.len());
        let longest = self.band_hashes.len().max(earlier.band_hashes.len());
        (0..common)
            .filter(|&b| self.band_hashes[b] != earlier.band_hashes[b])
            .chain(common..longest)
            .collect()
    }
}

/// Per-node merkle content hashes, indexed by `NodeId::index()`: a
/// constant hashes a fixed tag, an input hashes its name, and a gate
/// folds its fan-ins' hashes with their complement bits — so a node's
/// hash determines its whole transitive fan-in up to hash collisions,
/// independent of arena placement.
pub fn node_hashes(graph: &Mig) -> Vec<u64> {
    let mut hashes = Vec::new();
    extend_node_hashes(graph, &mut hashes);
    hashes
}

/// Appends merkle hashes for the arena nodes past `hashes.len()`. In an
/// append-only arena the existing prefix is immutable, so a refresh only
/// hashes the new suffix; fan-ins always point backwards, so every hash
/// a new node folds in is already present.
fn extend_node_hashes(graph: &Mig, hashes: &mut Vec<u64>) {
    let start = hashes.len();
    hashes.reserve(graph.node_count().saturating_sub(start));
    for id in graph.node_ids().skip(start) {
        let mut h = Fnv64::new();
        match graph.node(id) {
            Node::Constant => h.write(b"c"),
            Node::Input(position) => {
                let name = graph.input_name(*position as usize);
                h.write(b"i");
                h.write_u64(name.len() as u64);
                h.write(name.as_bytes());
            }
            Node::Majority(fanins) => {
                h.write(b"m");
                for s in fanins {
                    h.write_u64(hashes[s.node().index()]);
                    h.write(&[u8::from(s.is_complement())]);
                }
            }
        }
        hashes.push(h.finish());
    }
}

/// Extracts output `position`'s cone as a self-contained graph with the
/// canonical [`CONE_NAME`] graph and output names.
///
/// The extraction replays the cone's members in arena order through
/// [`Mig::add_maj`]: stored gates are already axiom-normalized and the
/// member renumbering is monotone (it preserves every signal ordering
/// the normalizer compares), so the replay re-derives each gate verbatim
/// and two cones with equal [`Cone::hash`] extract to byte-identical
/// graphs. Input names carry over — they are part of the cone's content
/// (and of its hash via the input nodes' merkle hashes).
///
/// # Panics
///
/// Panics if `position >= graph.output_count()`.
pub fn extract_cone(graph: &Mig, position: usize) -> Mig {
    let output = &graph.outputs()[position];
    let mut members: Vec<u32> = Vec::new();
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![output.signal.node()];
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        members.push(id.index() as u32);
        for s in graph.node(id).fanins() {
            if !seen[s.node().index()] {
                stack.push(s.node());
            }
        }
    }
    members.sort_unstable();

    let mut out = Mig::with_name(CONE_NAME);
    let mut map = vec![crate::signal::Signal::ZERO; graph.node_count()];
    for &m in &members {
        let id = NodeId::from_index(m as usize);
        map[m as usize] = match graph.node(id) {
            Node::Constant => crate::signal::Signal::ZERO,
            Node::Input(p) => out.add_input(graph.input_name(*p as usize)),
            Node::Majority(fanins) => {
                let f: Vec<crate::signal::Signal> = fanins
                    .iter()
                    .map(|s| map[s.node().index()].complement_if(s.is_complement()))
                    .collect();
                out.add_maj(f[0], f[1], f[2])
            }
        };
    }
    let root = map[output.signal.node().index()].complement_if(output.signal.is_complement());
    out.add_output(CONE_NAME, root);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_mig, RandomMigConfig};

    fn sample(seed: u64) -> Mig {
        random_mig(RandomMigConfig {
            inputs: 8,
            outputs: 6,
            gates: 150,
            depth: 10,
            seed,
        })
    }

    #[test]
    fn identical_graphs_partition_identically() {
        let g = sample(1);
        let a = ConePartition::analyze(&g);
        let b = ConePartition::analyze(&g.clone());
        assert_eq!(a.cones(), b.cones());
        assert_eq!(a.band_hashes(), b.band_hashes());
        assert!(a.dirty_bands(&b).is_empty());
    }

    #[test]
    fn rewiring_one_output_dirties_only_that_cone() {
        let g = sample(2);
        let before = ConePartition::analyze(&g);
        let mut edited = g.clone();
        let flipped = !edited.outputs()[3].signal;
        edited.set_output_signal(3, flipped);
        let after = ConePartition::analyze(&edited);
        for (i, (a, b)) in before.cones().iter().zip(after.cones()).enumerate() {
            if i == 3 {
                assert_ne!(a.hash, b.hash, "edited cone must change");
            } else {
                assert_eq!(a.hash, b.hash, "cone {i} untouched");
            }
        }
    }

    #[test]
    fn dead_gates_do_not_affect_cone_hashes() {
        let mut g = sample(3);
        let before = ConePartition::analyze(&g);
        // A dead gate (no output references it) is invisible to cones.
        let a = g.inputs()[0].signal();
        let b = g.inputs()[1].signal();
        g.add_maj(a, b, !a);
        let after = ConePartition::analyze(&g);
        assert_eq!(before.cones(), after.cones());
    }

    #[test]
    fn cone_hash_is_placement_independent() {
        // The same function built twice with interleaved unrelated
        // logic: per-output cone hashes must agree pairwise.
        let mut g1 = Mig::with_name("g1");
        let a = g1.add_input("a");
        let b = g1.add_input("b");
        let c = g1.add_input("c");
        let and = g1.add_and(a, b);
        let or = g1.add_or(b, c);
        g1.add_output("f", and);
        g1.add_output("g", or);

        let mut g2 = Mig::with_name("totally-different-name");
        let a = g2.add_input("a");
        let b = g2.add_input("b");
        let c = g2.add_input("c");
        let noise = g2.add_xor(a, c); // extra shared logic first
        let or = g2.add_or(b, c);
        let and = g2.add_and(a, b);
        g2.add_output("g-renamed", or);
        g2.add_output("f-renamed", and);
        g2.add_output("noise", noise);

        let p1 = ConePartition::analyze(&g1);
        let p2 = ConePartition::analyze(&g2);
        assert_eq!(p1.cones()[0].hash, p2.cones()[1].hash, "AND cone");
        assert_eq!(p1.cones()[1].hash, p2.cones()[0].hash, "OR cone");
        assert_ne!(p2.cones()[2].hash, p2.cones()[0].hash);
    }

    #[test]
    fn equal_hashes_extract_byte_identical_cones() {
        let g = sample(4);
        let partition = ConePartition::analyze(&g);
        for (i, cone) in partition.cones().iter().enumerate() {
            let extracted = extract_cone(&g, i);
            assert_eq!(extracted.output_count(), 1);
            assert_eq!(extracted.name(), CONE_NAME);
            assert_eq!(extracted.gate_count(), cone.gates);
            // Re-analyzing the extraction reproduces the hash (the cone
            // hash ignores output names, so canonicalizing them is
            // invisible to it).
            let re = ConePartition::analyze(&extracted);
            assert_eq!(re.cones()[0].hash, cone.hash);
            // Extraction is idempotent byte-for-byte.
            let again = extract_cone(&extracted, 0);
            assert_eq!(
                crate::io::write_mig(&extracted),
                crate::io::write_mig(&again)
            );
        }
    }

    #[test]
    fn extracted_cone_preserves_the_output_function() {
        let g = sample(5);
        for i in 0..g.output_count() {
            let cone = extract_cone(&g, i);
            // Exhaustive check over the cone's (small) support.
            let support: Vec<usize> = (0..cone.input_count())
                .map(|p| {
                    (0..g.input_count())
                        .find(|&q| g.input_name(q) == cone.input_name(p))
                        .expect("cone inputs exist in the source graph")
                })
                .collect();
            let sim = crate::Simulator::new(&g);
            let cone_sim = crate::Simulator::new(&cone);
            for assignment in 0u32..(1 << cone.input_count().min(10)) {
                let full: Vec<bool> = (0..g.input_count())
                    .map(|q| {
                        support
                            .iter()
                            .position(|&s| s == q)
                            .is_some_and(|bit| assignment >> bit & 1 != 0)
                    })
                    .collect();
                let narrow: Vec<bool> = (0..cone.input_count())
                    .map(|bit| assignment >> bit & 1 != 0)
                    .collect();
                let want = sim.eval(&full)[i];
                let got = cone_sim.eval(&narrow)[0];
                assert_eq!(want, got, "output {i}, assignment {assignment:b}");
            }
        }
    }

    #[test]
    fn band_diff_localizes_an_edit() {
        // Band hashes fold node content only, so an output-polarity flip
        // leaves every band clean …
        let g = sample(6);
        let before = ConePartition::with_band_width(&g, 4);
        let mut edited = g.clone();
        let flipped = !edited.outputs()[0].signal;
        edited.set_output_signal(0, flipped);
        let after = ConePartition::with_band_width(&edited, 4);
        assert!(after.dirty_bands(&before).is_empty());
        assert_eq!(after.band_width(), 4);

        // … while a new gate dirties exactly its level's band.
        let a = edited.inputs()[0].signal();
        let b = edited.inputs()[1].signal();
        let c = edited.inputs()[2].signal();
        let gate = edited.add_maj(a, b, c);
        edited.set_output_signal(0, gate);
        let grown = ConePartition::with_band_width(&edited, 4);
        let level = edited.levels()[gate.node().index()];
        assert_eq!(grown.dirty_bands(&before), vec![(level / 4) as usize]);
    }

    #[test]
    fn content_hash_and_remove_output_round_trip() {
        let mut g = sample(7);
        let h0 = g.content_hash();
        assert_eq!(h0, g.clone().content_hash(), "hash is stable");
        let removed = g.remove_output(2);
        assert_ne!(g.content_hash(), h0);
        assert_eq!(g.output_count(), 5);
        g.add_output(removed.name, removed.signal);
        // Same outputs, different order ⇒ different content hash.
        assert_ne!(g.content_hash(), h0);
    }
}
