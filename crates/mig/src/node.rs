//! Node payloads of a Majority-Inverter Graph.

use crate::signal::Signal;

/// Payload of one arena slot in a [`Mig`](crate::Mig).
///
/// A MIG is homogeneous: besides the constant and the primary inputs,
/// every node is a 3-input majority gate. Inversions live on edges
/// ([`Signal`] complement bits), never on nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant-zero node (always node 0).
    Constant,
    /// A primary input; the payload is the index into the graph's input
    /// list.
    Input(u32),
    /// A 3-input majority gate `⟨a b c⟩ = ab ∨ ac ∨ bc`.
    ///
    /// Fan-ins are kept sorted (see [`Mig::add_maj`](crate::Mig::add_maj))
    /// so that structural hashing can identify commutative variants.
    Majority([Signal; 3]),
}

impl Node {
    /// Fan-in signals of this node (empty for constants and inputs).
    #[inline]
    pub fn fanins(&self) -> &[Signal] {
        match self {
            Node::Constant | Node::Input(_) => &[],
            Node::Majority(fanins) => fanins,
        }
    }

    /// `true` for majority gates.
    #[inline]
    pub fn is_gate(&self) -> bool {
        matches!(self, Node::Majority(_))
    }

    /// `true` for primary inputs.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input(_))
    }

    /// `true` for the constant node.
    #[inline]
    pub fn is_constant(&self) -> bool {
        matches!(self, Node::Constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanins_of_leaf_nodes_are_empty() {
        assert!(Node::Constant.fanins().is_empty());
        assert!(Node::Input(3).fanins().is_empty());
    }

    #[test]
    fn fanins_of_majority_are_exposed() {
        let f = [Signal::ZERO, Signal::ONE, Signal::ZERO];
        let n = Node::Majority(f);
        assert_eq!(n.fanins(), &f);
        assert!(n.is_gate());
        assert!(!n.is_input());
        assert!(!n.is_constant());
    }
}
