//! Depth-oriented MIG rewriting.
//!
//! Walks the graph in topological order rebuilding every gate, and on
//! each gate whose deepest fan-in dominates the other two, tries the two
//! depth-reducing axioms:
//!
//! * Ω.A associativity (free — no node duplication) when the critical
//!   fan-in gate shares a fan-in with the gate under rewrite;
//! * Ω.D distributivity right-to-left (duplicates the shallow context)
//!   otherwise.
//!
//! The candidate with the smallest resulting level wins; ties keep the
//! original structure so the pass is size-conservative where depth does
//! not improve. This mirrors the depth recipe of Amarù's TCAD'16 MIG
//! paper that the DATE'17 wave-pipelining flow takes as its input stage.

use crate::graph::Mig;
use crate::rewrite::axioms;
use crate::signal::Signal;

/// Result summary of [`optimize_depth`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepthOptOutcome {
    /// Depth before optimization, measured after dead-node sweeping so
    /// unreachable deep logic cannot inflate it.
    pub before: u32,
    /// Depth after optimization.
    pub after: u32,
    /// Rewrite rounds that improved the depth (a round that fails to
    /// improve terminates the loop and is not counted).
    pub rounds: usize,
}

/// Rewrites `graph` to reduce logic depth; returns the optimized graph
/// (dead nodes swept) and a summary.
///
/// `max_rounds` bounds the number of full-graph passes; the pass stops
/// early once a round stops improving the depth. The result is always
/// functionally equivalent to the input (each axiom is individually
/// sound; see `rewrite::axioms` tests) and never deeper.
///
/// # Examples
///
/// ```
/// use mig::{optimize_depth, Mig};
///
/// // A deliberately skewed chain: f = AND(x0, AND(x1, AND(x2, x3)))
/// let mut g = Mig::new();
/// let x = g.add_inputs("x", 4);
/// let mut f = g.add_and(x[2], x[3]);
/// f = g.add_and(x[1], f);
/// f = g.add_and(x[0], f);
/// g.add_output("f", f);
/// assert_eq!(g.depth(), 3);
///
/// let (opt, outcome) = optimize_depth(&g, 4);
/// assert!(outcome.after < outcome.before);
/// assert_eq!(opt.depth(), outcome.after);
/// ```
pub fn optimize_depth(graph: &Mig, max_rounds: usize) -> (Mig, DepthOptOutcome) {
    let mut best = graph.cleanup();
    let before = best.depth();
    let mut rounds = 0;
    for _ in 0..max_rounds {
        let next = rewrite_round(&best);
        if next.depth() < best.depth() {
            best = next;
            rounds += 1;
        } else {
            break;
        }
    }
    let after = best.depth();
    (
        best,
        DepthOptOutcome {
            before,
            after,
            rounds,
        },
    )
}

/// Ensures `levels` covers all nodes of `g` (nodes are topologically
/// indexed, so missing suffix levels can be computed in index order).
fn sync_levels(g: &Mig, levels: &mut Vec<u32>) {
    while levels.len() < g.node_count() {
        let id = crate::NodeId::from_index(levels.len());
        let lvl = match g.node(id) {
            crate::Node::Majority(f) => {
                1 + f
                    .iter()
                    .map(|s| levels[s.node().index()])
                    .max()
                    .expect("gates have fan-ins")
            }
            _ => 0,
        };
        levels.push(lvl);
    }
}

fn level_of(levels: &[u32], s: Signal) -> u32 {
    levels[s.node().index()]
}

fn rewrite_round(graph: &Mig) -> Mig {
    let mut out = Mig::with_name(graph.name().to_owned());
    let mut map: Vec<Option<Signal>> = vec![None; graph.node_count()];
    map[crate::NodeId::CONST.index()] = Some(Signal::ZERO);
    for (pos, &id) in graph.inputs().iter().enumerate() {
        map[id.index()] = Some(out.add_input(graph.input_name(pos).to_owned()));
    }

    let mut levels: Vec<u32> = Vec::new();
    for id in graph.node_ids() {
        let crate::Node::Majority(fanins) = graph.node(id) else {
            continue;
        };
        let f: Vec<Signal> = fanins
            .iter()
            .map(|s| {
                map[s.node().index()]
                    .expect("fan-ins precede gates")
                    .complement_if(s.is_complement())
            })
            .collect();

        sync_levels(&out, &mut levels);
        let mut best = out.add_maj(f[0], f[1], f[2]);
        sync_levels(&out, &mut levels);
        let mut best_level = level_of(&levels, best);

        // Identify the critical fan-in (deepest); rewriting only helps
        // when it strictly dominates both others.
        let mut idx: Vec<usize> = vec![0, 1, 2];
        idx.sort_by_key(|&i| level_of(&levels, f[i]));
        let (s0, s1, crit) = (f[idx[0]], f[idx[1]], f[idx[2]]);
        let dominates = level_of(&levels, crit) >= level_of(&levels, s1) + 2 && !crit.is_const();
        if dominates {
            if let Some(inner) = axioms::as_majority(&out, crit) {
                // Associativity: requires a fan-in shared with {s0, s1},
                // either directly or complemented (the Ω.A conjugate
                // form). Swap out the deeper of the two non-shared inner
                // fan-ins so the critical path actually shortens.
                for &u in &[s0, s1] {
                    let pos = inner
                        .iter()
                        .position(|&s| s == u)
                        .or_else(|| inner.iter().position(|&s| s == !u));
                    let Some(pos) = pos else { continue };
                    let x = if u == s0 { s1 } else { s0 };
                    let (c0, c1) = match pos {
                        0 => (inner[1], inner[2]),
                        1 => (inner[0], inner[2]),
                        _ => (inner[0], inner[1]),
                    };
                    let z_choice = usize::from(level_of(&levels, c1) > level_of(&levels, c0));
                    if let Some(cand) = axioms::associativity_z(&mut out, x, u, crit, z_choice) {
                        sync_levels(&out, &mut levels);
                        let lvl = level_of(&levels, cand);
                        if lvl < best_level {
                            best = cand;
                            best_level = lvl;
                        }
                    }
                }
                // Distributivity: lift the deepest inner fan-in.
                let z_index = (0..3)
                    .max_by_key(|&i| level_of(&levels, inner[i]))
                    .expect("three fan-ins");
                if let Some(cand) = axioms::distributivity_rl(&mut out, s0, s1, crit, z_index) {
                    sync_levels(&out, &mut levels);
                    let lvl = level_of(&levels, cand);
                    if lvl < best_level {
                        best = cand;
                        best_level = lvl;
                    }
                }
            }
        }
        map[id.index()] = Some(best);
    }

    for o in graph.outputs() {
        let s = map[o.signal.node().index()]
            .expect("output drivers are mapped")
            .complement_if(o.signal.is_complement());
        out.add_output(o.name.clone(), s);
    }
    out.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::check_equivalence;

    fn skewed_and_chain(n: usize) -> Mig {
        let mut g = Mig::new();
        let x = g.add_inputs("x", n);
        let mut f = x[n - 1];
        for i in (0..n - 1).rev() {
            f = g.add_and(x[i], f);
        }
        g.add_output("f", f);
        g
    }

    #[test]
    fn chain_depth_is_logarithmized() {
        let g = skewed_and_chain(16);
        assert_eq!(g.depth(), 15);
        let (opt, outcome) = optimize_depth(&g, 32);
        assert_eq!(outcome.before, 15);
        assert!(
            outcome.after <= 6,
            "expected near-log depth, got {}",
            outcome.after
        );
        assert!(
            check_equivalence(&g, &opt).unwrap().holds(),
            "depth optimization must preserve function"
        );
    }

    #[test]
    fn balanced_graph_is_left_alone() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 4);
        let a = g.add_and(x[0], x[1]);
        let b = g.add_and(x[2], x[3]);
        let f = g.add_and(a, b);
        g.add_output("f", f);
        let (opt, outcome) = optimize_depth(&g, 8);
        assert_eq!(outcome.before, 2);
        assert_eq!(outcome.after, 2);
        assert_eq!(
            outcome.rounds, 0,
            "no round improved, so none should be reported"
        );
        assert_eq!(opt.gate_count(), g.gate_count());
    }

    #[test]
    fn before_depth_ignores_dead_logic() {
        // A deep dead chain next to a shallow live output: `before`
        // must report the live depth, not the dead one, or
        // `after <= before` holds vacuously.
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 12);
        let mut dead = ins[11];
        for i in (0..11).rev() {
            dead = g.add_and(ins[i], dead);
        }
        let live = g.add_and(ins[0], ins[1]);
        g.add_output("f", live);
        assert_eq!(g.depth(), 1, "only the live cone counts toward depth");
        let (_, outcome) = optimize_depth(&g, 8);
        assert_eq!(outcome.before, 1);
        assert_eq!(outcome.rounds, 0);
    }

    #[test]
    fn rounds_counts_only_improving_rounds() {
        let g = skewed_and_chain(16);
        let (_, outcome) = optimize_depth(&g, 32);
        assert!(outcome.rounds >= 1);
        // Re-optimizing the fixpoint performs no improving round.
        let (opt, _) = optimize_depth(&g, 32);
        let (_, again) = optimize_depth(&opt, 32);
        assert_eq!(again.rounds, 0);
        assert_eq!(again.before, again.after);
    }

    #[test]
    fn alternating_and_or_chain_is_logarithmized() {
        // AND gates are ⟨· · 0⟩ and OR gates ⟨· · 1⟩: adjacent gates
        // share the constant only in complemented form, so the depth
        // reduction here exercises the Ω.A conjugate matching.
        let mut g = Mig::new();
        let x = g.add_inputs("x", 12);
        let mut f = x[11];
        for i in (0..11).rev() {
            f = if i % 2 == 0 {
                g.add_and(x[i], f)
            } else {
                g.add_or(x[i], f)
            };
        }
        g.add_output("f", f);
        assert_eq!(g.depth(), 11);
        let (opt, outcome) = optimize_depth(&g, 32);
        assert!(
            outcome.after <= 7,
            "expected strong depth reduction, got {}",
            outcome.after
        );
        assert!(check_equivalence(&g, &opt).unwrap().holds());
    }

    #[test]
    fn or_chain_with_shared_literal_uses_associativity() {
        // f = (((a ∨ u) ∨ u-free terms...)) — build M-chains sharing 1.
        let mut g = Mig::new();
        let x = g.add_inputs("x", 8);
        let mut f = x[7];
        for i in (0..7).rev() {
            f = g.add_or(x[i], f); // all gates share the constant-one fan-in
        }
        g.add_output("f", f);
        let before = g.depth();
        let (opt, outcome) = optimize_depth(&g, 32);
        assert!(outcome.after < before);
        assert!(check_equivalence(&g, &opt).unwrap().holds());
    }

    #[test]
    fn xor_tree_is_preserved_functionally() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 8);
        let mut f = x[0];
        for &xi in &x[1..] {
            f = g.add_xor(f, xi);
        }
        g.add_output("f", f);
        let (opt, _) = optimize_depth(&g, 16);
        assert!(check_equivalence(&g, &opt).unwrap().holds());
        assert!(opt.depth() <= g.depth());
    }

    #[test]
    fn multi_output_graphs_keep_all_outputs() {
        let g = {
            let mut g = skewed_and_chain(10);
            let extra = {
                let ids: Vec<_> = g.inputs().to_vec();
                let a = ids[0].signal();
                let b = ids[1].signal();
                g.add_xor(a, b)
            };
            g.add_output("g", !extra);
            g
        };
        let (opt, _) = optimize_depth(&g, 16);
        assert_eq!(opt.output_count(), 2);
        assert!(check_equivalence(&g, &opt).unwrap().holds());
    }
}
