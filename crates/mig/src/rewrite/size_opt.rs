//! Size-oriented MIG rewriting.
//!
//! Rebuilds the graph through the strashing constructor (merging
//! structural duplicates and folding constants) and collapses the
//! left-to-right distributivity pattern
//! `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩`, which trades three nodes for
//! two whenever two fan-ins share a two-signal context.

use crate::graph::Mig;
use crate::rewrite::axioms;
use crate::signal::Signal;

/// Rewrites `graph` to reduce gate count; the result is functionally
/// equivalent and never larger.
///
/// `max_rounds` bounds the number of full passes (collapsing one pattern
/// can expose another).
///
/// # Examples
///
/// ```
/// use mig::{optimize_size, Mig};
///
/// let mut g = Mig::new();
/// let x = g.add_inputs("x", 5);
/// let a = g.add_maj(x[0], x[1], x[2]);
/// let b = g.add_maj(x[0], x[1], x[3]);
/// let f = g.add_maj(a, b, x[4]);
/// g.add_output("f", f);
/// assert_eq!(g.gate_count(), 3);
///
/// let opt = optimize_size(&g, 4);
/// assert_eq!(opt.gate_count(), 2);
/// ```
pub fn optimize_size(graph: &Mig, max_rounds: usize) -> Mig {
    let mut best = graph.cleanup();
    for _ in 0..max_rounds {
        let next = collapse_round(&best);
        if next.gate_count() < best.gate_count() {
            best = next;
        } else {
            break;
        }
    }
    best
}

fn collapse_round(graph: &Mig) -> Mig {
    let mut out = Mig::with_name(graph.name().to_owned());
    let mut map: Vec<Option<Signal>> = vec![None; graph.node_count()];
    map[crate::NodeId::CONST.index()] = Some(Signal::ZERO);
    for (pos, &id) in graph.inputs().iter().enumerate() {
        map[id.index()] = Some(out.add_input(graph.input_name(pos).to_owned()));
    }

    let fanout = graph.fanout_counts();
    // A collapse replaces ⟨⟨x y u⟩ ⟨x y v⟩ z⟩ (three gates) with
    // ⟨x y ⟨u v z⟩⟩ (two new gates); it only nets a saving when both
    // source gates die with the rewrite. A multiply-referenced source
    // gate stays live for its other readers, turning the "collapse" into
    // a net addition — so only singly-referenced gate fan-ins qualify.
    let dies = |s: &Signal| graph.node(s.node()).is_gate() && fanout[s.node().index()] == 1;

    for id in graph.node_ids() {
        let crate::Node::Majority(fanins) = graph.node(id) else {
            continue;
        };
        let f: Vec<Signal> = fanins
            .iter()
            .map(|s| {
                map[s.node().index()]
                    .expect("fan-ins precede gates")
                    .complement_if(s.is_complement())
            })
            .collect();

        // Try collapsing with each fan-in playing the role of z.
        let mut built = None;
        for z_pos in (0..3).rev() {
            let (ai, bi) = match z_pos {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            if !(dies(&fanins[ai]) && dies(&fanins[bi])) {
                continue;
            }
            if let Some(s) = axioms::distributivity_lr(&mut out, f[ai], f[bi], f[z_pos]) {
                built = Some(s);
                break;
            }
        }
        map[id.index()] = Some(built.unwrap_or_else(|| out.add_maj(f[0], f[1], f[2])));
    }

    for o in graph.outputs() {
        let s = map[o.signal.node().index()]
            .expect("output drivers are mapped")
            .complement_if(o.signal.is_complement());
        out.add_output(o.name.clone(), s);
    }
    out.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::check_equivalence;

    #[test]
    fn shared_context_is_collapsed() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 5);
        let a = g.add_maj(x[0], x[1], x[2]);
        let b = g.add_maj(x[0], x[1], x[3]);
        let f = g.add_maj(a, b, x[4]);
        g.add_output("f", f);
        let opt = optimize_size(&g, 4);
        assert_eq!(opt.gate_count(), 2);
        assert!(check_equivalence(&g, &opt).unwrap().holds());
    }

    #[test]
    fn dead_logic_is_swept() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 4);
        let live = g.add_maj(x[0], x[1], x[2]);
        let _dead = g.add_maj(x[1], x[2], x[3]);
        g.add_output("f", live);
        let opt = optimize_size(&g, 1);
        assert_eq!(opt.gate_count(), 1);
    }

    #[test]
    fn irreducible_graph_is_unchanged() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 5);
        let a = g.add_maj(x[0], x[1], x[2]);
        let f = g.add_maj(a, x[3], x[4]);
        g.add_output("f", f);
        let opt = optimize_size(&g, 4);
        assert_eq!(opt.gate_count(), 2);
        assert!(check_equivalence(&g, &opt).unwrap().holds());
    }

    #[test]
    fn shared_fanout_gates_are_not_collapsed() {
        // Regression: collapsing ⟨a b x4⟩ when a and b have other readers
        // leaves both source gates live and *adds* two nodes. A mixed
        // round (one harmful, two genuine collapses) used to net negative
        // and get accepted, locking in the harmful rewrite.
        let mut g = Mig::new();
        let x = g.add_inputs("x", 15);
        // Harmful pattern: a and b each feed a second gate.
        let a = g.add_maj(x[0], x[1], x[2]);
        let b = g.add_maj(x[0], x[1], x[3]);
        let f = g.add_maj(a, b, x[4]);
        let g2 = g.add_maj(a, x[5], x[6]);
        let g3 = g.add_maj(b, x[5], x[7]);
        // Two genuine patterns whose source gates die on collapse.
        let c = g.add_maj(x[8], x[9], x[10]);
        let d = g.add_maj(x[8], x[9], x[11]);
        let h1 = g.add_maj(c, d, x[12]);
        let e = g.add_maj(x[13], x[14], x[10]);
        let k = g.add_maj(x[13], x[14], x[11]);
        // z differs from h1's so the two collapsed inner gates do not
        // strash into one node (which would blur the expected count).
        let h2 = g.add_maj(e, k, x[4]);
        for (name, s) in [("f", f), ("g2", g2), ("g3", g3), ("h1", h1), ("h2", h2)] {
            g.add_output(name, s);
        }
        assert_eq!(g.gate_count(), 11);

        let opt = optimize_size(&g, 8);
        // Both genuine patterns collapse (−1 gate each); the shared-
        // fanout pattern must be left alone. The buggy version accepted
        // the mixed round and stopped at 10 gates.
        assert_eq!(opt.gate_count(), 9);
        assert!(check_equivalence(&g, &opt).unwrap().holds());
    }

    #[test]
    fn never_larger_on_structured_logic() {
        let mut g = Mig::new();
        let x = g.add_inputs("x", 8);
        let mut acc = Vec::new();
        for w in x.windows(3) {
            acc.push(g.add_maj(w[0], w[1], w[2]));
        }
        let f = g.add_and_n(&acc);
        g.add_output("f", f);
        let before = g.gate_count();
        let opt = optimize_size(&g, 8);
        assert!(opt.gate_count() <= before);
        assert!(check_equivalence(&g, &opt).unwrap().holds());
    }
}
