//! MIG algebraic rewriting.
//!
//! The paper assumes its input netlists are "already optimized" MIGs
//! (§III); this module provides the optimizer that produces such inputs,
//! built on the Ω axiom system of Amarù et al. (DAC'14/TCAD'16):
//!
//! * Ω.C commutativity and Ω.M majority — canonical form, handled
//!   directly by [`Mig::add_maj`](crate::Mig::add_maj);
//! * inverter propagation (self-duality) — also handled at construction;
//! * Ω.A associativity — [`axioms::associativity`];
//! * Ω.D distributivity — [`axioms::distributivity_rl`], the engine of
//!   depth optimization.

pub mod axioms;
mod depth_opt;
mod size_opt;

pub use depth_opt::{optimize_depth, DepthOptOutcome};
pub use size_opt::optimize_size;
