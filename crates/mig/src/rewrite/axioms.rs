//! The Ω axioms of majority algebra, as rewrite helpers.
//!
//! All helpers take already-built fan-in signals and either construct the
//! rewritten form (returning its signal) or report that the pattern does
//! not apply. Soundness of each axiom is checked exhaustively in the
//! tests at the bottom of this file.

use crate::graph::Mig;
use crate::node::Node;
use crate::signal::Signal;

/// Resolves `s` to majority fan-ins if its node is a gate, propagating an
/// edge complement into the fan-ins via self-duality
/// (`¬⟨x y z⟩ = ⟨x̄ ȳ z̄⟩`), so callers can always pattern-match a plain
/// majority.
pub fn as_majority(graph: &Mig, s: Signal) -> Option<[Signal; 3]> {
    match graph.node(s.node()) {
        Node::Majority(f) => {
            let c = s.is_complement();
            Some([
                f[0].complement_if(c),
                f[1].complement_if(c),
                f[2].complement_if(c),
            ])
        }
        _ => None,
    }
}

/// Ω.A associativity: `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`.
///
/// Given the fan-ins `(x, u, inner)` where `inner = ⟨y u z⟩` shares `u`,
/// rebuilds the right-hand side with `x` and `z` exchanged. Returns
/// `None` when `inner` is not a gate or shares no fan-in (plain or
/// complemented) with the outer gate. Equivalent to
/// [`associativity_z`] with `z_choice = 1`.
pub fn associativity(graph: &mut Mig, x: Signal, u: Signal, inner: Signal) -> Option<Signal> {
    associativity_z(graph, x, u, inner, 1)
}

/// Ω.A associativity with an explicit choice of the swapped-out signal.
///
/// Handles both forms of the shared fan-in:
///
/// * direct, `inner = ⟨y u z⟩`: `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`;
/// * complement-conjugate, `inner = ⟨y ū z⟩`:
///   `⟨x u ⟨y ū z⟩⟩ = ⟨z x ⟨y x u⟩⟩`.
///
/// The two inner fan-ins besides the shared one are the candidates for
/// `z` (the signal lifted out of the inner gate); `z_choice` (0 or 1, in
/// inner fan-in order) selects which — depth optimizers pass the deeper
/// candidate so the critical path shortens. Returns `None` when `inner`
/// is not a gate or holds neither `u` nor `¬u`.
pub fn associativity_z(
    graph: &mut Mig,
    x: Signal,
    u: Signal,
    inner: Signal,
    z_choice: usize,
) -> Option<Signal> {
    let f = as_majority(graph, inner)?;
    let rest = |pos: usize| match pos {
        0 => (f[1], f[2]),
        1 => (f[0], f[2]),
        _ => (f[0], f[1]),
    };
    let pick = |(c0, c1): (Signal, Signal)| {
        if z_choice == 0 {
            (c1, c0) // (y, z)
        } else {
            (c0, c1)
        }
    };
    if let Some(pos) = f.iter().position(|&s| s == u) {
        let (y, z) = pick(rest(pos));
        let new_inner = graph.add_maj(y, u, x);
        return Some(graph.add_maj(z, u, new_inner));
    }
    if let Some(pos) = f.iter().position(|&s| s == !u) {
        let (y, z) = pick(rest(pos));
        let new_inner = graph.add_maj(y, x, u);
        return Some(graph.add_maj(z, x, new_inner));
    }
    None
}

/// Ω.D distributivity, right-to-left:
/// `⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩`.
///
/// This is the depth-reduction direction: it lifts `z` one level closer
/// to the output at the cost of duplicating the `(x, y)` context. The
/// caller chooses which inner fan-in plays `z` (pass `z_index` 0..3 into
/// the inner gate's fan-ins, complement-resolved).
///
/// Returns `None` when `inner` is not a gate.
pub fn distributivity_rl(
    graph: &mut Mig,
    x: Signal,
    y: Signal,
    inner: Signal,
    z_index: usize,
) -> Option<Signal> {
    let f = as_majority(graph, inner)?;
    let z = f[z_index];
    let (u, v) = match z_index {
        0 => (f[1], f[2]),
        1 => (f[0], f[2]),
        _ => (f[0], f[1]),
    };
    let a = graph.add_maj(x, y, u);
    let b = graph.add_maj(x, y, v);
    Some(graph.add_maj(a, b, z))
}

/// Ω.D distributivity, left-to-right (size-reduction direction):
/// `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ = ⟨x y ⟨u v z⟩⟩`.
///
/// Applies when the first two fan-ins are gates sharing two fan-in
/// signals; saves one node. Returns `None` when the pattern is absent.
pub fn distributivity_lr(graph: &mut Mig, a: Signal, b: Signal, z: Signal) -> Option<Signal> {
    let fa = as_majority(graph, a)?;
    let fb = as_majority(graph, b)?;
    // Find a shared pair (x, y) between fa and fb.
    for i in 0..3 {
        for j in (i + 1)..3 {
            let (x, y) = (fa[i], fa[j]);
            if let Some(pu) = (0..3).find(|&k| fb[k] == x) {
                if let Some(pv) = (0..3).find(|&k| k != pu && fb[k] == y) {
                    let u = fa[3 - i - j];
                    let v = fb[3 - pu - pv];
                    let inner = graph.add_maj(u, v, z);
                    return Some(graph.add_maj(x, y, inner));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth_table::TruthTable;

    /// Asserts two single-output builders over `n` inputs are equivalent.
    fn assert_equiv(
        n: usize,
        lhs: impl FnOnce(&mut Mig, &[Signal]) -> Signal + 'static,
        rhs: impl FnOnce(&mut Mig, &[Signal]) -> Signal + 'static,
    ) {
        type Builder = Box<dyn FnOnce(&mut Mig, &[Signal]) -> Signal>;
        let table = |build: Builder| {
            let mut g = Mig::new();
            let ins = g.add_inputs("x", n);
            let f = build(&mut g, &ins);
            g.add_output("f", f);
            TruthTable::of_graph(&g)[0].clone()
        };
        assert_eq!(table(Box::new(lhs)), table(Box::new(rhs)));
    }

    #[test]
    fn associativity_is_sound() {
        assert_equiv(
            4,
            |g, x| {
                let inner = g.add_maj(x[2], x[1], x[3]);
                g.add_maj(x[0], x[1], inner)
            },
            |g, x| {
                let inner = g.add_maj(x[2], x[1], x[3]);
                associativity(g, x[0], x[1], inner).expect("pattern applies")
            },
        );
    }

    #[test]
    fn associativity_requires_shared_fanin() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 5);
        let inner = g.add_maj(ins[2], ins[3], ins[4]);
        assert_eq!(associativity(&mut g, ins[0], ins[1], inner), None);
        let input_inner = ins[4];
        assert_eq!(associativity(&mut g, ins[0], ins[1], input_inner), None);
    }

    #[test]
    fn associativity_z_is_sound_for_every_z_choice() {
        for z_choice in 0..2 {
            assert_equiv(
                4,
                |g, x| {
                    let inner = g.add_maj(x[2], x[1], x[3]);
                    g.add_maj(x[0], x[1], inner)
                },
                move |g, x| {
                    let inner = g.add_maj(x[2], x[1], x[3]);
                    associativity_z(g, x[0], x[1], inner, z_choice).expect("pattern applies")
                },
            );
        }
    }

    #[test]
    fn associativity_z_lifts_the_chosen_candidate() {
        // `z_choice` selects which non-shared inner fan-in is swapped out
        // to the outer gate (depth optimizers pass the deeper one); the
        // other stays inside the rebuilt inner gate.
        for z_choice in 0..2 {
            let mut g = Mig::new();
            let ins = g.add_inputs("x", 4);
            let inner = g.add_maj(ins[2], ins[1], ins[3]);
            let f = as_majority(&g, inner).expect("gate");
            let shared = f.iter().position(|&s| s == ins[1]).expect("shares x1");
            let cands: Vec<Signal> = (0..3).filter(|&i| i != shared).map(|i| f[i]).collect();
            let out = associativity_z(&mut g, ins[0], ins[1], inner, z_choice).expect("applies");
            let of = as_majority(&g, out).expect("outer result is a gate");
            assert!(
                of.contains(&cands[z_choice]),
                "z_choice {z_choice} must lift {:?} into the outer gate, got {of:?}",
                cands[z_choice]
            );
        }
    }

    #[test]
    fn associativity_complemented_shared_fanin_is_sound() {
        // Ω.A complement-conjugate form: the inner gate holds ¬u, not u.
        for z_choice in 0..2 {
            assert_equiv(
                4,
                |g, x| {
                    let inner = g.add_maj(x[2], !x[1], x[3]);
                    g.add_maj(x[0], x[1], inner)
                },
                move |g, x| {
                    let inner = g.add_maj(x[2], !x[1], x[3]);
                    associativity_z(g, x[0], x[1], inner, z_choice).expect("pattern applies")
                },
            );
        }
    }

    #[test]
    fn associativity_complemented_form_with_complemented_inner_edge() {
        // The shared-signal search runs on the complement-resolved inner
        // fan-ins, so a complemented inner edge still matches.
        for z_choice in 0..2 {
            assert_equiv(
                4,
                |g, x| {
                    let inner = g.add_maj(x[2], x[1], x[3]);
                    g.add_maj(x[0], x[1], !inner)
                },
                move |g, x| {
                    let inner = g.add_maj(x[2], x[1], x[3]);
                    associativity_z(g, x[0], x[1], !inner, z_choice).expect("pattern applies")
                },
            );
        }
    }

    #[test]
    fn associativity_complemented_form_over_all_shared_positions() {
        // Exhaustive: ¬u at each position of the inner gate, all z
        // choices, checked by truth table over every input assignment.
        fn inner_fanins(x: &[Signal], shared_pos: usize) -> [Signal; 3] {
            let mut f = [x[2], !x[1], x[3]];
            f.swap(1, shared_pos);
            f
        }
        for shared_pos in 0..3 {
            for z_choice in 0..2 {
                assert_equiv(
                    4,
                    move |g, x| {
                        let f = inner_fanins(x, shared_pos);
                        let inner = g.add_maj(f[0], f[1], f[2]);
                        g.add_maj(x[0], x[1], inner)
                    },
                    move |g, x| {
                        let f = inner_fanins(x, shared_pos);
                        let inner = g.add_maj(f[0], f[1], f[2]);
                        associativity_z(g, x[0], x[1], inner, z_choice).expect("pattern applies")
                    },
                );
            }
        }
    }

    #[test]
    fn distributivity_rl_is_sound_for_every_z_choice() {
        for z_index in 0..3 {
            assert_equiv(
                5,
                |g, x| {
                    let inner = g.add_maj(x[2], x[3], x[4]);
                    g.add_maj(x[0], x[1], inner)
                },
                move |g, x| {
                    let inner = g.add_maj(x[2], x[3], x[4]);
                    distributivity_rl(g, x[0], x[1], inner, z_index).expect("pattern applies")
                },
            );
        }
    }

    #[test]
    fn distributivity_rl_handles_complemented_inner() {
        assert_equiv(
            5,
            |g, x| {
                let inner = g.add_maj(x[2], x[3], x[4]);
                g.add_maj(x[0], x[1], !inner)
            },
            |g, x| {
                let inner = g.add_maj(x[2], x[3], x[4]);
                distributivity_rl(g, x[0], x[1], !inner, 1).expect("pattern applies")
            },
        );
    }

    #[test]
    fn distributivity_lr_is_sound_and_saves_a_node() {
        // Build ⟨⟨x y u⟩ ⟨x y v⟩ z⟩ explicitly, then collapse it.
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 5);
        let (x, y, u, v, z) = (ins[0], ins[1], ins[2], ins[3], ins[4]);
        let a = g.add_maj(x, y, u);
        let b = g.add_maj(x, y, v);
        let before = g.add_maj(a, b, z);
        g.add_output("f", before);

        let collapsed = distributivity_lr(&mut g, a, b, z).expect("pattern applies");
        g.add_output("g", collapsed);

        let tables = TruthTable::of_graph(&g);
        assert_eq!(tables[0], tables[1]);
        // Collapsed form reuses strashed nodes: only inner + outer added.
        let clean = {
            let mut h = Mig::new();
            let ins = h.add_inputs("x", 5);
            let inner = h.add_maj(ins[2], ins[3], ins[4]);
            let f = h.add_maj(ins[0], ins[1], inner);
            h.add_output("f", f);
            h
        };
        assert_eq!(clean.gate_count(), 2, "LR form is two gates, not three");
    }

    #[test]
    fn distributivity_lr_rejects_non_matching_shapes() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 6);
        let a = g.add_maj(ins[0], ins[1], ins[2]);
        let b = g.add_maj(ins[3], ins[4], ins[5]);
        assert_eq!(distributivity_lr(&mut g, a, b, ins[0]), None);
        assert_eq!(distributivity_lr(&mut g, ins[0], b, ins[1]), None);
    }

    #[test]
    fn as_majority_resolves_complement() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 3);
        let m = g.add_maj(ins[0], ins[1], ins[2]);
        let f = as_majority(&g, !m).expect("gate");
        // Self-duality: fan-ins all complemented.
        for (orig, got) in ins.iter().zip(f) {
            assert_eq!(got, !*orig);
        }
        assert_eq!(as_majority(&g, ins[0]), None);
    }
}
