//! Deterministic FNV-1a hashing (64-bit) — the workspace's one hash
//! function for both structural-hash tables and content keys.
//!
//! Two faces over the same algorithm:
//!
//! * [`FnvHasher`] implements [`std::hash::Hasher`], so
//!   [`FnvBuildHasher`] drops into any `HashMap`. The [`Mig`]'s
//!   structural-hash table uses it: strash keys are three packed
//!   [`Signal`]s (12 bytes), for which SipHash's per-lookup setup cost
//!   dominates — on a 10⁶-gate synthetic build the table is queried
//!   once per gate, so the hasher is on the construction hot path.
//! * [`Fnv64`] is the incremental content hasher (explicit
//!   `write_u64` / `write_f64` feeds) that `wavepipe`'s result cache
//!   keys are built from. Unlike `std`'s randomized default hasher its
//!   digests are stable across processes and runs, which is what lets
//!   cached results be compared against golden re-runs.
//!
//! [`Mig`]: crate::Mig
//! [`Signal`]: crate::Signal

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a as a [`std::hash::Hasher`], for `HashMap`s whose keys are
/// short and whose lookups are hot (the strash table).
#[derive(Clone, Copy, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }
}

/// Plugs [`FnvHasher`] into `HashMap::with_hasher` / `Default`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// Incremental FNV-1a content hasher over explicit byte/word feeds.
///
/// Not `std::hash`: digests must be stable across processes and runs
/// (cached results are compared against golden re-runs), and the
/// explicit `write_*` API keeps every feed's byte encoding visible at
/// the call site.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(OFFSET)
    }

    /// Feeds a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern, so equal bit patterns hash equal
    /// and -0.0 / 0.0 / NaN payloads are distinguished exactly as the
    /// bit-identicality golden tests require.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "bit patterns, not numeric equality");
    }

    /// The published FNV-1a/64 reference vectors — both faces must
    /// produce them bit-for-bit (downstream crates persist digests).
    #[test]
    fn matches_reference_fnv1a_vectors() {
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325, "offset basis");
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
        let mut h = FnvHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hasher_face_matches_the_content_face() {
        let mut h = FnvHasher::default();
        h.write(b"wavepipe");
        assert_eq!(h.finish(), hash_bytes(b"wavepipe"));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: HashMap<[u32; 3], u32, FnvBuildHasher> = HashMap::default();
        map.insert([1, 2, 3], 7);
        map.insert([3, 2, 1], 9);
        assert_eq!(map.get(&[1, 2, 3]), Some(&7));
        assert_eq!(map.get(&[3, 2, 1]), Some(&9));
        assert_eq!(map.get(&[2, 2, 2]), None);
    }
}
