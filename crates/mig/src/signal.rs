//! Node identifiers and complementable edge signals.
//!
//! A [`Signal`] packs a [`NodeId`] together with a complement bit into a
//! single `u32`, mockturtle-style. Complemented edges are what makes a
//! Majority-*Inverter* Graph: inversion is an edge attribute rather than a
//! node, so the network stays homogeneous (every node is a 3-input
//! majority gate).

use std::fmt;

/// Index of a node inside a [`Mig`](crate::Mig) arena.
///
/// Node 0 is always the constant-zero node; primary inputs and majority
/// gates follow in insertion order. `NodeId`s are only meaningful relative
/// to the graph that created them.
///
/// # Examples
///
/// ```
/// use mig::Mig;
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// assert_eq!(a.node().index(), 1); // node 0 is the constant
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-zero node present in every graph.
    pub const CONST: NodeId = NodeId(0);

    /// Returns the arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw arena index.
    ///
    /// Intended for iteration code that walks `0..graph.node_count()`;
    /// passing an index that is out of bounds for the target graph will
    /// cause panics on later accesses, not undefined behaviour.
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        debug_assert!(index <= u32::MAX as usize / 2);
        NodeId(index as u32)
    }

    /// The non-complemented signal pointing at this node.
    #[inline]
    pub fn signal(self) -> Signal {
        Signal::new(self, false)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An edge in the MIG: a target node plus a complement flag.
///
/// `Signal` is the currency of MIG construction: every fan-in of a
/// majority node, and every primary output, is a `Signal`. The complement
/// flag is stored in the least-significant bit so that a `Signal` fits in
/// a `u32` and ordering groups the two polarities of one node together.
///
/// # Examples
///
/// ```
/// use mig::Mig;
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let na = !a;
/// assert_eq!(na.node(), a.node());
/// assert!(na.is_complement());
/// assert_eq!(!na, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(u32);

impl Signal {
    /// The constant-zero signal.
    pub const ZERO: Signal = Signal(0);
    /// The constant-one signal (complement of constant zero).
    pub const ONE: Signal = Signal(1);

    /// Creates a signal pointing at `node`, complemented iff `complement`.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Signal {
        Signal(node.0 << 1 | complement as u32)
    }

    /// The node this signal points at.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns this signal with the complement bit forced to `complement`.
    #[inline]
    pub fn with_complement(self, complement: bool) -> Signal {
        Signal(self.0 & !1 | complement as u32)
    }

    /// Returns this signal complemented iff `condition` holds.
    ///
    /// Convenient when propagating inversions:
    ///
    /// ```
    /// use mig::Signal;
    /// let s = Signal::ZERO.complement_if(true);
    /// assert_eq!(s, Signal::ONE);
    /// ```
    #[inline]
    pub fn complement_if(self, condition: bool) -> Signal {
        Signal(self.0 ^ condition as u32)
    }

    /// `true` if this is one of the two constant signals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == NodeId::CONST
    }

    /// Raw packed representation (node index << 1 | complement).
    #[inline]
    pub fn to_raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a signal from [`Signal::to_raw`] output.
    #[inline]
    pub fn from_raw(raw: u32) -> Signal {
        Signal(raw)
    }
}

impl std::ops::Not for Signal {
    type Output = Signal;

    #[inline]
    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

impl From<NodeId> for Signal {
    #[inline]
    fn from(node: NodeId) -> Signal {
        node.signal()
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_node_zero() {
        assert_eq!(Signal::ZERO.node(), NodeId::CONST);
        assert_eq!(Signal::ONE.node(), NodeId::CONST);
        assert!(!Signal::ZERO.is_complement());
        assert!(Signal::ONE.is_complement());
        assert!(Signal::ZERO.is_const());
        assert!(Signal::ONE.is_const());
    }

    #[test]
    fn not_is_involutive() {
        let s = Signal::new(NodeId::from_index(42), false);
        assert_eq!(!!s, s);
        assert_ne!(!s, s);
        assert_eq!((!s).node(), s.node());
    }

    #[test]
    fn complement_if_flips_only_when_true() {
        let s = Signal::new(NodeId::from_index(7), false);
        assert_eq!(s.complement_if(false), s);
        assert_eq!(s.complement_if(true), !s);
    }

    #[test]
    fn with_complement_forces_polarity() {
        let s = Signal::new(NodeId::from_index(3), true);
        assert!(!s.with_complement(false).is_complement());
        assert!(s.with_complement(true).is_complement());
        assert_eq!(s.with_complement(false).node(), s.node());
    }

    #[test]
    fn raw_roundtrip() {
        for idx in [0usize, 1, 17, 1 << 20] {
            for c in [false, true] {
                let s = Signal::new(NodeId::from_index(idx), c);
                assert_eq!(Signal::from_raw(s.to_raw()), s);
            }
        }
    }

    #[test]
    fn ordering_groups_polarities() {
        let a = Signal::new(NodeId::from_index(1), false);
        let na = !a;
        let b = Signal::new(NodeId::from_index(2), false);
        assert!(a < na);
        assert!(na < b);
    }
}
