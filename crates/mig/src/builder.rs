//! Derived logic operators built on top of the majority primitive.
//!
//! AND and OR are majority gates with a constant fan-in
//! (`x∧y = ⟨x y 0⟩`, `x∨y = ⟨x y 1⟩`), which is exactly why AND/OR/INV
//! graphs are a special case of MIGs (paper §II-A). Everything here
//! reduces to [`Mig::add_maj`] and therefore inherits constant folding
//! and structural hashing.

use crate::graph::Mig;
use crate::signal::Signal;

impl Mig {
    /// Two-input AND: `⟨x y 0⟩`.
    pub fn add_and(&mut self, x: Signal, y: Signal) -> Signal {
        self.add_maj(x, y, Signal::ZERO)
    }

    /// Two-input OR: `⟨x y 1⟩`.
    pub fn add_or(&mut self, x: Signal, y: Signal) -> Signal {
        self.add_maj(x, y, Signal::ONE)
    }

    /// Two-input NAND.
    pub fn add_nand(&mut self, x: Signal, y: Signal) -> Signal {
        !self.add_and(x, y)
    }

    /// Two-input NOR.
    pub fn add_nor(&mut self, x: Signal, y: Signal) -> Signal {
        !self.add_or(x, y)
    }

    /// Two-input XOR, three majority gates:
    /// `x⊕y = ⟨⟨x y 1⟩ ¬⟨x y 0⟩ 0⟩`.
    pub fn add_xor(&mut self, x: Signal, y: Signal) -> Signal {
        let or = self.add_or(x, y);
        let and = self.add_and(x, y);
        self.add_and(or, !and)
    }

    /// Two-input XNOR.
    pub fn add_xnor(&mut self, x: Signal, y: Signal) -> Signal {
        !self.add_xor(x, y)
    }

    /// Implication `x → y`.
    pub fn add_implies(&mut self, x: Signal, y: Signal) -> Signal {
        self.add_or(!x, y)
    }

    /// 2:1 multiplexer `sel ? then_s : else_s`.
    pub fn add_mux(&mut self, sel: Signal, then_s: Signal, else_s: Signal) -> Signal {
        let a = self.add_and(sel, then_s);
        let b = self.add_and(!sel, else_s);
        self.add_or(a, b)
    }

    /// Full adder: returns `(sum, carry)` for `x + y + cin`.
    ///
    /// The carry *is* a majority gate (`⟨x y cin⟩`); the sum takes two
    /// more: `sum = ⟨¬carry ⟨x y ¬cin⟩ cin⟩` — three gates total, the
    /// canonical MIG full adder.
    pub fn add_full_adder(&mut self, x: Signal, y: Signal, cin: Signal) -> (Signal, Signal) {
        let carry = self.add_maj(x, y, cin);
        let inner = self.add_maj(x, y, !cin);
        let sum = self.add_maj(!carry, inner, cin);
        (sum, carry)
    }

    /// Half adder: returns `(sum, carry)` for `x + y`.
    pub fn add_half_adder(&mut self, x: Signal, y: Signal) -> (Signal, Signal) {
        let carry = self.add_and(x, y);
        let sum = self.add_xor(x, y);
        (sum, carry)
    }

    /// Three-input XOR (the full-adder sum), three majority gates.
    pub fn add_xor3(&mut self, x: Signal, y: Signal, z: Signal) -> Signal {
        self.add_full_adder(x, y, z).0
    }

    /// Balanced AND over any number of signals.
    ///
    /// Returns constant one for an empty input (the identity of AND).
    pub fn add_and_n(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, Signal::ONE, Mig::add_and)
    }

    /// Balanced OR over any number of signals.
    ///
    /// Returns constant zero for an empty input.
    pub fn add_or_n(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, Signal::ZERO, Mig::add_or)
    }

    /// Balanced XOR (parity) over any number of signals.
    ///
    /// Returns constant zero for an empty input.
    pub fn add_xor_n(&mut self, signals: &[Signal]) -> Signal {
        self.reduce_balanced(signals, Signal::ZERO, Mig::add_xor)
    }

    fn reduce_balanced(
        &mut self,
        signals: &[Signal],
        empty: Signal,
        mut op: impl FnMut(&mut Mig, Signal, Signal) -> Signal,
    ) -> Signal {
        match signals {
            [] => empty,
            [s] => *s,
            _ => {
                let mut layer = signals.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(match pair {
                            [x, y] => op(self, *x, *y),
                            [x] => *x,
                            _ => unreachable!(),
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// One-hot decoder tree selecting among `2^sel.len()` outputs.
    ///
    /// Output `i` is high iff the selector lines (LSB first) encode `i`.
    pub fn add_decoder(&mut self, sel: &[Signal]) -> Vec<Signal> {
        let mut terms = vec![Signal::ONE];
        for &s in sel {
            let mut next = Vec::with_capacity(terms.len() * 2);
            for &t in &terms {
                next.push(self.add_and(t, !s));
            }
            for &t in &terms {
                next.push(self.add_and(t, s));
            }
            terms = next;
        }
        terms
    }

    /// Wide multiplexer: selects `inputs[i]` where `i` is encoded by
    /// `sel` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != 1 << sel.len()`.
    pub fn add_mux_n(&mut self, sel: &[Signal], inputs: &[Signal]) -> Signal {
        assert_eq!(
            inputs.len(),
            1usize << sel.len(),
            "mux input count must be 2^selector-width"
        );
        let mut layer = inputs.to_vec();
        for &s in sel {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(self.add_mux(s, pair[1], pair[0]));
            }
            layer = next;
        }
        layer[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::Simulator;

    /// Exhaustively checks `f` (on `n` inputs) against `expect`.
    fn check(
        n: usize,
        build: impl FnOnce(&mut Mig, &[Signal]) -> Signal,
        expect: impl Fn(u32) -> bool,
    ) {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", n);
        let f = build(&mut g, &ins);
        g.add_output("f", f);
        let sim = Simulator::new(&g);
        for pattern in 0..1u32 << n {
            let bits: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            let out = sim.eval(&bits);
            assert_eq!(
                out[0],
                expect(pattern),
                "pattern {pattern:0width$b}",
                width = n
            );
        }
    }

    #[test]
    fn and_or_xor_truth_tables() {
        check(2, |g, x| g.add_and(x[0], x[1]), |p| p == 3);
        check(2, |g, x| g.add_or(x[0], x[1]), |p| p != 0);
        check(2, |g, x| g.add_xor(x[0], x[1]), |p| p == 1 || p == 2);
        check(2, |g, x| g.add_nand(x[0], x[1]), |p| p != 3);
        check(2, |g, x| g.add_nor(x[0], x[1]), |p| p == 0);
        check(2, |g, x| g.add_xnor(x[0], x[1]), |p| p == 0 || p == 3);
        check(
            2,
            |g, x| g.add_implies(x[0], x[1]),
            |p| p & 1 == 0 || p & 2 != 0,
        );
    }

    #[test]
    fn mux_selects() {
        check(
            3,
            |g, x| g.add_mux(x[0], x[1], x[2]),
            |p| {
                let (s, t, e) = (p & 1 != 0, p & 2 != 0, p & 4 != 0);
                if s {
                    t
                } else {
                    e
                }
            },
        );
    }

    #[test]
    fn full_adder_is_correct() {
        for bit in 0..2 {
            check(
                3,
                |g, x| {
                    let (s, c) = g.add_full_adder(x[0], x[1], x[2]);
                    if bit == 0 {
                        s
                    } else {
                        c
                    }
                },
                |p| {
                    let total = (p & 1) + (p >> 1 & 1) + (p >> 2 & 1);
                    total >> bit & 1 != 0
                },
            );
        }
    }

    #[test]
    fn full_adder_costs_three_gates() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 3);
        let _ = g.add_full_adder(ins[0], ins[1], ins[2]);
        assert_eq!(g.gate_count(), 3);
    }

    #[test]
    fn nary_reductions() {
        check(5, |g, x| g.add_and_n(x), |p| p == 31);
        check(5, |g, x| g.add_or_n(x), |p| p != 0);
        check(5, |g, x| g.add_xor_n(x), |p| p.count_ones() % 2 == 1);
    }

    #[test]
    fn nary_edge_cases() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        assert_eq!(g.add_and_n(&[]), Signal::ONE);
        assert_eq!(g.add_or_n(&[]), Signal::ZERO);
        assert_eq!(g.add_xor_n(&[]), Signal::ZERO);
        assert_eq!(g.add_and_n(&[a]), a);
        assert_eq!(g.gate_count(), 0);
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut g = Mig::new();
        let sel = g.add_inputs("s", 3);
        let outs = g.add_decoder(&sel);
        assert_eq!(outs.len(), 8);
        for (i, &o) in outs.iter().enumerate() {
            g.add_output(format!("d{i}"), o);
        }
        let sim = Simulator::new(&g);
        for pattern in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            let out = sim.eval(&bits);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i as u32 == pattern);
            }
        }
    }

    #[test]
    fn wide_mux_selects_indexed_input() {
        let mut g = Mig::new();
        let sel = g.add_inputs("s", 2);
        let data = g.add_inputs("d", 4);
        let f = g.add_mux_n(&sel, &data);
        g.add_output("f", f);
        let sim = Simulator::new(&g);
        for pattern in 0..1u32 << 6 {
            let bits: Vec<bool> = (0..6).map(|i| pattern >> i & 1 != 0).collect();
            let idx = (pattern & 3) as usize;
            assert_eq!(sim.eval(&bits)[0], bits[2 + idx]);
        }
    }
}
