//! Path-length analysis following the paper's definitions (§III):
//!
//! * **Distance** `D(u, v)` — the set of lengths of all paths from `u`
//!   to `v`; the algorithms only ever need its minimum and maximum.
//! * **Base distance** `BD(v)` — the set of lengths of all paths from
//!   any primary input to `v`; `max BD(v)` is the *depth* of `v`.
//! * **Exclusive base distance** `xBD(v)` — `BD(v)` excluding `v`
//!   itself, i.e. one level lower than the depth.
//!
//! A netlist is *path balanced* (wave-pipelinable) exactly when for every
//! node `min BD = max BD` and all primary outputs share one base
//! distance.

use crate::graph::Mig;
use crate::node::Node;
use crate::signal::NodeId;

/// Minimum and maximum base distance of one node.
///
/// Edges count one unit each; inputs and constants have base distance 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaseDistance {
    /// Shortest input→node path length.
    pub min: u32,
    /// Longest input→node path length (= the node's depth / level).
    pub max: u32,
}

impl BaseDistance {
    /// `true` when every input→node path has the same length.
    pub fn is_tight(&self) -> bool {
        self.min == self.max
    }

    /// Maximum exclusive base distance (`max xBD`), one level below the
    /// node's depth. Zero for inputs and constants.
    pub fn max_exclusive(&self) -> u32 {
        self.max.saturating_sub(1)
    }
}

/// Precomputed base distances for every node of a graph.
///
/// # Examples
///
/// ```
/// use mig::{Mig, PathAnalysis};
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let c = g.add_input("c");
/// let m1 = g.add_maj(a, b, c);
/// let m2 = g.add_maj(m1, a, b); // a path of length 1 and one of length 2
/// g.add_output("f", m2);
///
/// let pa = PathAnalysis::new(&g);
/// assert!(!pa.base_distance(m2.node()).is_tight());
/// assert!(!pa.is_balanced(&g));
/// ```
#[derive(Clone, Debug)]
pub struct PathAnalysis {
    distances: Vec<BaseDistance>,
}

impl PathAnalysis {
    /// Computes base distances for every node of `graph`.
    pub fn new(graph: &Mig) -> PathAnalysis {
        let mut distances = vec![BaseDistance { min: 0, max: 0 }; graph.node_count()];
        for id in graph.node_ids() {
            if let Node::Majority(fanins) = graph.node(id) {
                let mut min = u32::MAX;
                let mut max = 0;
                for s in fanins {
                    let d = distances[s.node().index()];
                    min = min.min(d.min);
                    max = max.max(d.max);
                }
                distances[id.index()] = BaseDistance {
                    min: min + 1,
                    max: max + 1,
                };
            }
        }
        PathAnalysis { distances }
    }

    /// Base distance of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the analyzed graph.
    pub fn base_distance(&self, node: NodeId) -> BaseDistance {
        self.distances[node.index()]
    }

    /// `true` when the graph satisfies both balancing objectives of the
    /// paper: every node's base-distance set is a single value, and all
    /// primary outputs are at the same base distance.
    ///
    /// Constant-driven outputs are ignored (a constant wave carries no
    /// timing), matching the buffer-insertion algorithm's treatment.
    pub fn is_balanced(&self, graph: &Mig) -> bool {
        for id in graph.node_ids() {
            if graph.node(id).is_gate() && !self.distances[id.index()].is_tight() {
                return false;
            }
        }
        let mut output_bd = None;
        for o in graph.outputs() {
            if o.signal.is_const() {
                continue;
            }
            let bd = self.distances[o.signal.node().index()];
            if !bd.is_tight() {
                return false;
            }
            match output_bd {
                None => output_bd = Some(bd.max),
                Some(prev) if prev != bd.max => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// The largest spread (`max − min`) of any node's base distance — a
    /// measure of how unbalanced the graph is (0 means balanced paths,
    /// though outputs may still sit at different depths).
    pub fn max_spread(&self) -> u32 {
        self.distances
            .iter()
            .map(|d| d.max - d.min)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_have_zero_distance() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let pa = PathAnalysis::new(&g);
        assert_eq!(pa.base_distance(a.node()), BaseDistance { min: 0, max: 0 });
        assert!(pa.base_distance(a.node()).is_tight());
        assert_eq!(pa.base_distance(a.node()).max_exclusive(), 0);
    }

    #[test]
    fn chain_is_tight() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m1 = g.add_maj(a, b, c);
        let m2 = g.add_maj(m1, !m1, c); // folded away: equals c
        assert_eq!(m2, c);
        let m3 = g.add_maj(m1, a, !b);
        g.add_output("f", m3);
        let pa = PathAnalysis::new(&g);
        let d = pa.base_distance(m3.node());
        // m3 sees m1 (depth 1) and inputs (depth 0): spread.
        assert_eq!(d, BaseDistance { min: 1, max: 2 });
        assert!(!d.is_tight());
        assert_eq!(d.max_exclusive(), 1);
        assert_eq!(pa.max_spread(), 1);
    }

    #[test]
    fn balanced_detection_requires_equal_output_depths() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m1 = g.add_maj(a, b, c);
        let m2 = g.add_maj(a, !b, c);
        g.add_output("f", m1);
        g.add_output("g", m2);
        let pa = PathAnalysis::new(&g);
        assert!(pa.is_balanced(&g), "two depth-1 outputs are balanced");

        let mut g2 = g.clone();
        let m3 = g2.add_maj(m1, m2, c);
        g2.add_output("h", m3);
        let pa2 = PathAnalysis::new(&g2);
        assert!(!pa2.is_balanced(&g2), "outputs at depth 1 and 2 are not");
    }

    #[test]
    fn constant_outputs_do_not_break_balance() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m = g.add_maj(a, b, c);
        g.add_output("f", m);
        g.add_output("k", crate::Signal::ONE);
        let pa = PathAnalysis::new(&g);
        assert!(pa.is_balanced(&g));
    }
}
