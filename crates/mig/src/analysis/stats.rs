//! Summary statistics of a MIG: the numbers the paper reports per
//! benchmark (size, depth, I/O counts) plus fan-out distribution data
//! needed by the fan-out-restriction study (paper §IV).

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::Mig;

/// Distribution of fan-out counts over all driving nodes (inputs and
/// gates; nodes with zero fan-out are included, dangling or not).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FanoutHistogram {
    buckets: BTreeMap<u32, usize>,
}

impl FanoutHistogram {
    /// Builds the histogram for `graph` (fan-out counts include primary
    /// output uses, since a physical branch is needed for those too).
    pub fn new(graph: &Mig) -> FanoutHistogram {
        let counts = graph.fanout_counts();
        let mut buckets = BTreeMap::new();
        for id in graph.node_ids() {
            if graph.node(id).is_constant() {
                continue; // constants are technology cells, not driven nets
            }
            *buckets.entry(counts[id.index()]).or_insert(0) += 1;
        }
        FanoutHistogram { buckets }
    }

    /// Number of nodes whose fan-out exceeds `limit`.
    pub fn over_limit(&self, limit: u32) -> usize {
        self.buckets
            .iter()
            .filter(|(&fo, _)| fo > limit)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Largest fan-out in the graph (0 for an empty graph).
    pub fn max_fanout(&self) -> u32 {
        self.buckets.keys().next_back().copied().unwrap_or(0)
    }

    /// Iterates `(fanout, node_count)` pairs in increasing fan-out order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.buckets.iter().map(|(&fo, &n)| (fo, n))
    }
}

/// One-line summary of a graph, as used in benchmark tables.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphStats {
    /// Model name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Majority gates (the paper's "size").
    pub gates: usize,
    /// Logic depth in levels.
    pub depth: u32,
    /// Largest fan-out.
    pub max_fanout: u32,
}

impl GraphStats {
    /// Computes the summary for `graph`.
    pub fn of(graph: &Mig) -> GraphStats {
        GraphStats {
            name: graph.name().to_owned(),
            inputs: graph.input_count(),
            outputs: graph.output_count(),
            gates: graph.gate_count(),
            depth: graph.depth(),
            max_fanout: FanoutHistogram::new(graph).max_fanout(),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: i/o {}/{}, size {}, depth {}, max fan-out {}",
            self.name, self.inputs, self.outputs, self.gates, self.depth, self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mig {
        let mut g = Mig::with_name("sample");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let m1 = g.add_maj(a, b, c);
        let m2 = g.add_maj(m1, a, !c);
        let m3 = g.add_maj(m1, b, c);
        g.add_output("f", m2);
        g.add_output("g", m3);
        g
    }

    #[test]
    fn histogram_counts_driving_uses() {
        let g = sample();
        let h = FanoutHistogram::new(&g);
        // m1 drives m2 and m3 → fan-out 2; a drives m1, m2 → 2;
        // b drives m1, m3 → 2; c drives m1, m2, m3 → 3;
        // m2, m3 drive one output each → 1.
        assert_eq!(h.max_fanout(), 3);
        assert_eq!(h.over_limit(2), 1);
        assert_eq!(h.over_limit(1), 4);
        assert_eq!(h.over_limit(3), 0);
        let total: usize = h.iter().map(|(_, n)| n).sum();
        assert_eq!(total, g.node_count() - 1); // constant excluded
    }

    #[test]
    fn stats_summary() {
        let s = GraphStats::of(&sample());
        assert_eq!(s.name, "sample");
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 3);
        assert_eq!(s.depth, 2);
        assert_eq!(s.max_fanout, 3);
        let line = s.to_string();
        assert!(line.contains("sample"));
        assert!(line.contains("depth 2"));
    }
}
