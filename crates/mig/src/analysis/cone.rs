//! Transitive fan-in cone and structural support analysis.
//!
//! Wave pipelining balances *all* input→output paths, so the buffer bill
//! of an output depends on how wide and how skewed its cone is; this
//! module exposes the per-output cone sizes and input supports that
//! explain those costs (and that the benchmark reports print).

use crate::graph::Mig;
use crate::node::Node;
use crate::signal::NodeId;

/// A set of primary-input positions, packed as a bitset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Support {
    words: Vec<u64>,
    inputs: usize,
}

impl Support {
    fn empty(inputs: usize) -> Support {
        Support {
            words: vec![0; inputs.div_ceil(64)],
            inputs,
        }
    }

    fn insert(&mut self, position: usize) {
        self.words[position / 64] |= 1 << (position % 64);
    }

    fn union_with(&mut self, other: &Support) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether input `position` is in the support.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not a valid input position.
    pub fn contains(&self, position: usize) -> bool {
        assert!(position < self.inputs, "input position out of range");
        self.words[position / 64] >> (position % 64) & 1 != 0
    }

    /// Number of inputs in the support.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when the support is empty (constant cone).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` when the two supports share no input.
    pub fn is_disjoint(&self, other: &Support) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Input positions in the support, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.inputs).filter(move |&p| self.contains(p))
    }
}

/// Per-node cone data for a whole graph.
///
/// # Examples
///
/// ```
/// use mig::{ConeAnalysis, Mig};
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let c = g.add_input("c");
/// let d = g.add_input("d");
/// let m1 = g.add_maj(a, b, c);
/// let m2 = g.add_and(c, d);
/// g.add_output("f", m1);
/// g.add_output("g", m2);
///
/// let cones = ConeAnalysis::new(&g);
/// assert_eq!(cones.output_support(0).len(), 3); // {a, b, c}
/// assert_eq!(cones.output_support(1).len(), 2); // {c, d}
/// assert!(!cones.output_support(0).is_disjoint(cones.output_support(1)));
/// ```
#[derive(Clone, Debug)]
pub struct ConeAnalysis {
    supports: Vec<Support>,
    cone_gates: Vec<u32>,
    output_nodes: Vec<NodeId>,
}

impl ConeAnalysis {
    /// Computes supports and cone sizes for every node of `graph`.
    pub fn new(graph: &Mig) -> ConeAnalysis {
        let n = graph.node_count();
        let inputs = graph.input_count();
        let mut supports: Vec<Support> = Vec::with_capacity(n);
        // Cone gate sets would be quadratic to store; the gate *count*
        // per node is computed exactly with a per-output DFS instead
        // (cone counts are not additive over fan-ins due to sharing).
        for id in graph.node_ids() {
            let mut s = Support::empty(inputs);
            match graph.node(id) {
                Node::Constant => {}
                Node::Input(pos) => s.insert(*pos as usize),
                Node::Majority(fanins) => {
                    for f in fanins {
                        let fs = supports[f.node().index()].clone();
                        s.union_with(&fs);
                    }
                }
            }
            supports.push(s);
        }

        // Exact cone gate counts per node via reverse reachability would
        // also be quadratic; compute them only for output drivers (the
        // quantity reports actually need).
        let output_nodes: Vec<NodeId> = graph.outputs().iter().map(|o| o.signal.node()).collect();
        let mut cone_gates = vec![0u32; graph.output_count()];
        let mut mark = vec![u32::MAX; n];
        for (oi, &root) in output_nodes.iter().enumerate() {
            let mut count = 0u32;
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                if mark[id.index()] == oi as u32 {
                    continue;
                }
                mark[id.index()] = oi as u32;
                if graph.node(id).is_gate() {
                    count += 1;
                }
                for f in graph.node(id).fanins() {
                    if mark[f.node().index()] != oi as u32 {
                        stack.push(f.node());
                    }
                }
            }
            cone_gates[oi] = count;
        }

        ConeAnalysis {
            supports,
            cone_gates,
            output_nodes,
        }
    }

    /// Structural support of `node` (over-approximates the functional
    /// support: a variable may appear without affecting the function).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the analyzed graph.
    pub fn support(&self, node: NodeId) -> &Support {
        &self.supports[node.index()]
    }

    /// Support of output `position` (by declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn output_support(&self, position: usize) -> &Support {
        &self.supports[self.output_nodes[position].index()]
    }

    /// Number of majority gates in output `position`'s transitive
    /// fan-in cone.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn output_cone_gates(&self, position: usize) -> u32 {
        self.cone_gates[position]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Mig {
        // Shared middle gate feeding two outputs.
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let mid = g.add_maj(a, b, c);
        let f = g.add_maj(mid, a, d);
        let h = g.add_maj(mid, b, !d);
        g.add_output("f", f);
        g.add_output("h", h);
        g
    }

    #[test]
    fn supports_are_exact_for_tree_cones() {
        let g = diamond();
        let cones = ConeAnalysis::new(&g);
        let sf = cones.output_support(0);
        assert_eq!(sf.len(), 4);
        assert!(sf.contains(0) && sf.contains(3));
        let ids: Vec<usize> = sf.iter().collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cone_gate_counts_account_for_sharing() {
        let g = diamond();
        let cones = ConeAnalysis::new(&g);
        // Each output cone: its own gate + shared mid = 2 gates.
        assert_eq!(cones.output_cone_gates(0), 2);
        assert_eq!(cones.output_cone_gates(1), 2);
    }

    #[test]
    fn disjoint_supports_are_detected() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let f = g.add_and(a, b);
        let h = g.add_and(c, d);
        g.add_output("f", f);
        g.add_output("h", h);
        let cones = ConeAnalysis::new(&g);
        assert!(cones.output_support(0).is_disjoint(cones.output_support(1)));
        assert!(!cones.output_support(0).is_empty());
    }

    #[test]
    fn constant_output_has_empty_support() {
        let mut g = Mig::new();
        let _ = g.add_input("a");
        g.add_output("k", crate::Signal::ONE);
        let cones = ConeAnalysis::new(&g);
        assert!(cones.output_support(0).is_empty());
        assert_eq!(cones.output_cone_gates(0), 0);
        assert_eq!(cones.output_support(0).len(), 0);
    }

    #[test]
    fn wide_graph_supports_span_words() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 100);
        let f = g.add_and_n(&ins);
        g.add_output("f", f);
        let cones = ConeAnalysis::new(&g);
        assert_eq!(cones.output_support(0).len(), 100);
        assert!(cones.output_support(0).contains(99));
    }
}
