//! Structural analyses over MIGs: path-length statistics and summary
//! metrics used by the wave-pipelining flow and the benchmark reports.

mod cone;
mod paths;
mod stats;

pub use cone::{ConeAnalysis, Support};
pub use paths::{BaseDistance, PathAnalysis};
pub use stats::{FanoutHistogram, GraphStats};
