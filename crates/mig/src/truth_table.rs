//! Exhaustive truth tables for small MIGs.
//!
//! A [`TruthTable`] stores one bit per input pattern, packed into `u64`
//! words. Tables are the ground truth used by the equivalence checker for
//! graphs of up to [`TruthTable::MAX_INPUTS`] inputs.

use std::fmt;

use crate::graph::Mig;
use crate::simulate::Simulator;

/// A packed single-output truth table over `inputs` variables.
///
/// Bit `p` of the table is the function value on the input pattern whose
/// binary encoding is `p` (input 0 is the least-significant selector
/// bit).
///
/// # Examples
///
/// ```
/// use mig::{Mig, TruthTable};
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let f = g.add_xor(a, b);
/// g.add_output("f", f);
///
/// let tables = TruthTable::of_graph(&g);
/// assert_eq!(tables[0].to_hex(), "6"); // XOR = 0b0110
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Largest supported input count (2^20 pattern bits = 128 KiB/table).
    pub const MAX_INPUTS: usize = 20;

    /// All-zero table over `inputs` variables.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > TruthTable::MAX_INPUTS`.
    pub fn zero(inputs: usize) -> TruthTable {
        assert!(
            inputs <= Self::MAX_INPUTS,
            "truth tables support at most {} inputs",
            Self::MAX_INPUTS
        );
        TruthTable {
            inputs,
            words: vec![0; Self::word_count(inputs)],
        }
    }

    fn word_count(inputs: usize) -> usize {
        if inputs >= 6 {
            1 << (inputs - 6)
        } else {
            1
        }
    }

    fn pattern_mask(inputs: usize) -> u64 {
        if inputs >= 6 {
            !0
        } else {
            (1u64 << (1 << inputs)) - 1
        }
    }

    /// Number of input variables.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of input patterns (`2^inputs`).
    pub fn pattern_count(&self) -> usize {
        1 << self.inputs
    }

    /// Value of the function on pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.pattern_count()`.
    pub fn bit(&self, p: usize) -> bool {
        assert!(p < self.pattern_count(), "pattern index out of range");
        self.words[p / 64] >> (p % 64) & 1 != 0
    }

    /// Sets the value of the function on pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.pattern_count()`.
    pub fn set_bit(&mut self, p: usize, value: bool) {
        assert!(p < self.pattern_count(), "pattern index out of range");
        let w = &mut self.words[p / 64];
        if value {
            *w |= 1 << (p % 64);
        } else {
            *w &= !(1 << (p % 64));
        }
    }

    /// Number of patterns on which the function is 1.
    pub fn count_ones(&self) -> usize {
        let mask = Self::pattern_mask(self.inputs);
        self.words
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let w = if i + 1 == self.words.len() {
                    w & mask
                } else {
                    w
                };
                w.count_ones() as usize
            })
            .sum()
    }

    /// Computes the truth table of every primary output of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than [`TruthTable::MAX_INPUTS`]
    /// inputs.
    pub fn of_graph(graph: &Mig) -> Vec<TruthTable> {
        let n = graph.input_count();
        assert!(
            n <= Self::MAX_INPUTS,
            "graph has {n} inputs; exhaustive tables support at most {}",
            Self::MAX_INPUTS
        );
        let sim = Simulator::new(graph);
        let mut tables = vec![TruthTable::zero(n); graph.output_count()];
        let patterns = 1usize << n;
        let mut base = 0usize;
        while base < patterns {
            // 64 consecutive patterns per word evaluation.
            let inputs: Vec<u64> = (0..n)
                .map(|i| {
                    if i < 6 {
                        // Within-word variation.
                        const MASKS: [u64; 6] = [
                            0xAAAA_AAAA_AAAA_AAAA,
                            0xCCCC_CCCC_CCCC_CCCC,
                            0xF0F0_F0F0_F0F0_F0F0,
                            0xFF00_FF00_FF00_FF00,
                            0xFFFF_0000_FFFF_0000,
                            0xFFFF_FFFF_0000_0000,
                        ];
                        MASKS[i]
                    } else if base >> i & 1 != 0 {
                        !0
                    } else {
                        0
                    }
                })
                .collect();
            let out = sim.eval_words(&inputs);
            for (t, w) in tables.iter_mut().zip(out) {
                t.words[base / 64] = w;
            }
            base += 64;
        }
        tables
    }

    /// Hexadecimal encoding, most-significant pattern first (ABC style).
    pub fn to_hex(&self) -> String {
        let digits = usize::max(1, self.pattern_count() / 4);
        let mut s = String::with_capacity(digits);
        for d in (0..digits).rev() {
            let mut nibble = 0u8;
            for b in 0..4 {
                let p = d * 4 + b;
                if p < self.pattern_count() && self.bit(p) {
                    nibble |= 1 << b;
                }
            }
            s.push(char::from_digit(nibble as u32, 16).expect("nibble < 16"));
        }
        s
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, 0x{})", self.inputs, self.to_hex())
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_table_is_0x6() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.add_xor(a, b);
        g.add_output("f", f);
        let t = &TruthTable::of_graph(&g)[0];
        assert_eq!(t.to_hex(), "6");
        assert_eq!(t.count_ones(), 2);
    }

    #[test]
    fn majority_table_is_0xe8() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 3);
        let m = g.add_maj(ins[0], ins[1], ins[2]);
        g.add_output("m", m);
        let t = &TruthTable::of_graph(&g)[0];
        assert_eq!(t.to_hex(), "e8");
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn seven_input_parity_spans_words() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 7);
        let p = g.add_xor_n(&ins);
        g.add_output("p", p);
        let t = &TruthTable::of_graph(&g)[0];
        assert_eq!(t.pattern_count(), 128);
        assert_eq!(t.count_ones(), 64);
        for pat in 0..128usize {
            assert_eq!(t.bit(pat), pat.count_ones() % 2 == 1, "pattern {pat}");
        }
    }

    #[test]
    fn set_bit_roundtrip() {
        let mut t = TruthTable::zero(4);
        t.set_bit(5, true);
        t.set_bit(11, true);
        assert!(t.bit(5));
        assert!(t.bit(11));
        assert!(!t.bit(6));
        t.set_bit(5, false);
        assert!(!t.bit(5));
        assert_eq!(t.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "pattern index out of range")]
    fn bit_out_of_range_panics() {
        TruthTable::zero(3).bit(8);
    }
}
