//! Combinational simulation of MIGs.
//!
//! The [`Simulator`] evaluates a graph on concrete input assignments,
//! either one pattern at a time ([`Simulator::eval`]) or 64 patterns in
//! parallel using bit-sliced words ([`Simulator::eval_words`]). The
//! bit-parallel path is what makes random-vector equivalence checking and
//! exhaustive truth tables cheap.

use crate::graph::Mig;
use crate::node::Node;

/// Evaluates a [`Mig`] on input patterns.
///
/// # Examples
///
/// ```
/// use mig::{Mig, Simulator};
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let f = g.add_and(a, b);
/// g.add_output("f", f);
///
/// let sim = Simulator::new(&g);
/// assert_eq!(sim.eval(&[true, true]), vec![true]);
/// assert_eq!(sim.eval(&[true, false]), vec![false]);
/// ```
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Mig,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph`.
    pub fn new(graph: &'g Mig) -> Simulator<'g> {
        Simulator { graph }
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &'g Mig {
        self.graph
    }

    /// Evaluates one input pattern; returns one bool per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the graph's input count.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words)
            .into_iter()
            .map(|w| w & 1 != 0)
            .collect()
    }

    /// Evaluates 64 patterns at once: bit `k` of `inputs[i]` is the value
    /// of input `i` in pattern `k`. Returns one word per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the graph's input count.
    pub fn eval_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.graph.input_count(),
            "input pattern width must match the graph's input count"
        );
        let g = self.graph;
        let mut values = vec![0u64; g.node_count()];
        for id in g.node_ids() {
            values[id.index()] = match g.node(id) {
                Node::Constant => 0,
                Node::Input(pos) => inputs[*pos as usize],
                Node::Majority(f) => {
                    let v = |i: usize| {
                        let s = f[i];
                        let w = values[s.node().index()];
                        if s.is_complement() {
                            !w
                        } else {
                            w
                        }
                    };
                    let (a, b, c) = (v(0), v(1), v(2));
                    a & b | a & c | b & c
                }
            };
        }
        g.outputs()
            .iter()
            .map(|o| {
                let w = values[o.signal.node().index()];
                if o.signal.is_complement() {
                    !w
                } else {
                    w
                }
            })
            .collect()
    }
}

/// A [`Simulator`] *is* a bit-parallel word function — the MIG side of
/// every differential check in the workspace (see
/// [`crate::check_word_functions`]).
impl crate::equivalence::WordFunction for Simulator<'_> {
    fn input_count(&self) -> usize {
        self.graph.input_count()
    }

    fn output_count(&self) -> usize {
        self.graph.output_count()
    }

    fn eval_block(&mut self, inputs: &[u64]) -> Vec<u64> {
        self.eval_words(inputs)
    }

    fn output_name(&self, position: usize) -> String {
        self.graph.outputs()[position].name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_semantics() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 3);
        let m = g.add_maj(ins[0], ins[1], ins[2]);
        g.add_output("m", m);
        let sim = Simulator::new(&g);
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 != 0).collect();
            let expect = p.count_ones() >= 2;
            assert_eq!(sim.eval(&bits)[0], expect, "pattern {p:03b}");
        }
    }

    #[test]
    fn complemented_edges_and_outputs() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.add_and(!a, b);
        g.add_output("f", !f);
        let sim = Simulator::new(&g);
        // !( !a & b )
        assert_eq!(sim.eval(&[false, true]), vec![false]);
        assert_eq!(sim.eval(&[true, true]), vec![true]);
        assert_eq!(sim.eval(&[false, false]), vec![true]);
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 4);
        let m1 = g.add_maj(ins[0], !ins[1], ins[2]);
        let m2 = g.add_maj(m1, ins[3], !ins[0]);
        let x = g.add_xor(m1, m2);
        g.add_output("f", x);
        let sim = Simulator::new(&g);

        // All 16 patterns packed into one word evaluation.
        let words: Vec<u64> = (0..4)
            .map(|i| {
                let mut w = 0u64;
                for p in 0..16u64 {
                    if p >> i & 1 != 0 {
                        w |= 1 << p;
                    }
                }
                w
            })
            .collect();
        let word_out = sim.eval_words(&words)[0];
        for p in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(sim.eval(&bits)[0], word_out >> p & 1 != 0, "pattern {p}");
        }
    }

    #[test]
    fn constant_outputs() {
        let mut g = Mig::new();
        let _ = g.add_input("a");
        g.add_output("zero", crate::Signal::ZERO);
        g.add_output("one", crate::Signal::ONE);
        let sim = Simulator::new(&g);
        assert_eq!(sim.eval(&[true]), vec![false, true]);
    }
}
