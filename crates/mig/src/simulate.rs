//! Combinational simulation of MIGs.
//!
//! The [`Simulator`] evaluates a graph on concrete input assignments:
//! one pattern at a time ([`Simulator::eval`]), 64 patterns in parallel
//! using bit-sliced words ([`Simulator::eval_words`]), or `width`
//! 64-lane blocks per traversal ([`Simulator::eval_wide`]).
//!
//! Evaluation does not walk the [`Node`] arena directly: `new` flattens
//! the graph once into a [`SimPlan`] — typed flat op lists with the
//! fan-in complement bits hoisted into per-gate masks — and every call
//! replays that plan against a reused scratch buffer. The plan is
//! behind an [`Arc`] so parallel sweeps can stamp out per-worker
//! simulators ([`Simulator::with_plan`]) without re-flattening the
//! graph.
//!
//! The wide path is the performance core: with `width` = 8 every
//! random fan-in read consumes exactly one 64-byte cache line (8
//! adjacent `u64` lanes of the same node), so sweeps stop wasting
//! memory bandwidth on 7/8 of every line the narrow path touches.

use std::cell::RefCell;
use std::sync::Arc;

use crate::graph::Mig;
use crate::node::Node;

/// One flattened majority gate: `target = ⟨a b c⟩` over *node-index*
/// operands, with fan-in complement bits packed into `neg` (bit `i`
/// complements fan-in `i`).
#[derive(Clone, Copy, Debug)]
struct Gate {
    target: u32,
    a: u32,
    b: u32,
    c: u32,
    neg: u8,
}

/// A [`Mig`] flattened for evaluation: typed flat op lists in arena
/// (= topological) order, built once and replayed per block.
///
/// Obtain one from [`Simulator::plan`] (or build it directly with
/// [`SimPlan::build`]) and share it across threads with
/// [`Simulator::with_plan`]; the plan is immutable and `Sync`.
#[derive(Debug)]
pub struct SimPlan {
    node_count: usize,
    inputs: usize,
    /// `(node index, input position)` for every primary input node.
    input_nodes: Vec<(u32, u32)>,
    /// Majority gates in arena order (fan-ins always point backwards).
    gates: Vec<Gate>,
    /// `(node index, complement)` per primary output.
    outputs: Vec<(u32, bool)>,
}

impl SimPlan {
    /// Flattens `graph` into evaluation order.
    pub fn build(graph: &Mig) -> SimPlan {
        let mut input_nodes = Vec::with_capacity(graph.input_count());
        let mut gates = Vec::with_capacity(graph.gate_count());
        for id in graph.node_ids() {
            match graph.node(id) {
                Node::Constant => {}
                Node::Input(pos) => input_nodes.push((id.index() as u32, *pos)),
                Node::Majority(f) => gates.push(Gate {
                    target: id.index() as u32,
                    a: f[0].node().index() as u32,
                    b: f[1].node().index() as u32,
                    c: f[2].node().index() as u32,
                    neg: u8::from(f[0].is_complement())
                        | u8::from(f[1].is_complement()) << 1
                        | u8::from(f[2].is_complement()) << 2,
                }),
            }
        }
        let outputs = graph
            .outputs()
            .iter()
            .map(|o| (o.signal.node().index() as u32, o.signal.is_complement()))
            .collect();
        SimPlan {
            node_count: graph.node_count(),
            inputs: graph.input_count(),
            input_nodes,
            gates,
            outputs,
        }
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Replays the plan on `width` 64-lane blocks: `inputs[i * width +
    /// j]` is word `j` of input `i`, `out[o * width + j]` word `j` of
    /// output `o`. `values` is scratch (resized and overwritten), `out`
    /// is cleared and filled.
    fn eval_wide_into(
        &self,
        inputs: &[u64],
        width: usize,
        values: &mut Vec<u64>,
        out: &mut Vec<u64>,
    ) {
        assert_eq!(
            inputs.len(),
            self.inputs * width,
            "input pattern width must match the graph's input count"
        );
        values.clear();
        values.resize(self.node_count * width, 0);
        out.clear();
        out.resize(self.outputs.len() * width, 0);
        match width {
            1 => self.kernel::<1>(inputs, values, out),
            2 => self.kernel::<2>(inputs, values, out),
            4 => self.kernel::<4>(inputs, values, out),
            8 => self.kernel::<8>(inputs, values, out),
            _ => self.kernel_any(inputs, width, values, out),
        }
    }

    /// The width-monomorphized evaluation kernel: `W` is a compile-time
    /// constant so the per-gate lane loops fully unroll.
    fn kernel<const W: usize>(&self, inputs: &[u64], values: &mut [u64], out: &mut [u64]) {
        for &(node, pos) in &self.input_nodes {
            let t = node as usize * W;
            let s = pos as usize * W;
            values[t..t + W].copy_from_slice(&inputs[s..s + W]);
        }
        for g in &self.gates {
            let ma = if g.neg & 1 != 0 { !0u64 } else { 0 };
            let mb = if g.neg & 2 != 0 { !0u64 } else { 0 };
            let mc = if g.neg & 4 != 0 { !0u64 } else { 0 };
            let (a0, b0, c0) = (g.a as usize * W, g.b as usize * W, g.c as usize * W);
            let t0 = g.target as usize * W;
            for j in 0..W {
                let a = values[a0 + j] ^ ma;
                let b = values[b0 + j] ^ mb;
                let c = values[c0 + j] ^ mc;
                values[t0 + j] = a & b | a & c | b & c;
            }
        }
        for (o, &(node, complement)) in self.outputs.iter().enumerate() {
            let s = node as usize * W;
            let m = if complement { !0u64 } else { 0 };
            for j in 0..W {
                out[o * W + j] = values[s + j] ^ m;
            }
        }
    }

    /// Runtime-width fallback for widths without a monomorphized kernel.
    fn kernel_any(&self, inputs: &[u64], w: usize, values: &mut [u64], out: &mut [u64]) {
        for &(node, pos) in &self.input_nodes {
            let t = node as usize * w;
            let s = pos as usize * w;
            values[t..t + w].copy_from_slice(&inputs[s..s + w]);
        }
        for g in &self.gates {
            let ma = if g.neg & 1 != 0 { !0u64 } else { 0 };
            let mb = if g.neg & 2 != 0 { !0u64 } else { 0 };
            let mc = if g.neg & 4 != 0 { !0u64 } else { 0 };
            let (a0, b0, c0) = (g.a as usize * w, g.b as usize * w, g.c as usize * w);
            let t0 = g.target as usize * w;
            for j in 0..w {
                let a = values[a0 + j] ^ ma;
                let b = values[b0 + j] ^ mb;
                let c = values[c0 + j] ^ mc;
                values[t0 + j] = a & b | a & c | b & c;
            }
        }
        for (o, &(node, complement)) in self.outputs.iter().enumerate() {
            let s = node as usize * w;
            let m = if complement { !0u64 } else { 0 };
            for j in 0..w {
                out[o * w + j] = values[s + j] ^ m;
            }
        }
    }
}

/// Evaluates a [`Mig`] on input patterns.
///
/// # Examples
///
/// ```
/// use mig::{Mig, Simulator};
///
/// let mut g = Mig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let f = g.add_and(a, b);
/// g.add_output("f", f);
///
/// let sim = Simulator::new(&g);
/// assert_eq!(sim.eval(&[true, true]), vec![true]);
/// assert_eq!(sim.eval(&[true, false]), vec![false]);
/// ```
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Mig,
    plan: Arc<SimPlan>,
    scratch: RefCell<Vec<u64>>,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` (the graph is flattened into a
    /// [`SimPlan`] once).
    pub fn new(graph: &'g Mig) -> Simulator<'g> {
        Simulator::with_plan(graph, Arc::new(SimPlan::build(graph)))
    }

    /// Creates a simulator around an already-built plan — how parallel
    /// sweeps stamp out per-worker simulators without re-flattening the
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not match `graph`'s node count (a plan is
    /// only valid for the graph it was built from).
    pub fn with_plan(graph: &'g Mig, plan: Arc<SimPlan>) -> Simulator<'g> {
        assert_eq!(
            plan.node_count,
            graph.node_count(),
            "the plan must be built from the simulated graph"
        );
        Simulator {
            graph,
            plan,
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &'g Mig {
        self.graph
    }

    /// The flattened evaluation plan (share it across workers via
    /// [`Simulator::with_plan`]).
    pub fn plan(&self) -> Arc<SimPlan> {
        self.plan.clone()
    }

    /// Evaluates one input pattern; returns one bool per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the graph's input count.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words)
            .into_iter()
            .map(|w| w & 1 != 0)
            .collect()
    }

    /// Evaluates 64 patterns at once: bit `k` of `inputs[i]` is the value
    /// of input `i` in pattern `k`. Returns one word per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the graph's input count.
    pub fn eval_words(&self, inputs: &[u64]) -> Vec<u64> {
        self.eval_wide(inputs, 1)
    }

    /// Evaluates `width` 64-lane blocks in one traversal:
    /// `inputs[i * width + j]` is word `j` of input `i`; the result
    /// holds word `j` of output `o` at `[o * width + j]`.
    ///
    /// The node-value scratch is reused across calls, so a sweep costs
    /// one allocation per *result*, not per call.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count() * width`.
    pub fn eval_wide(&self, inputs: &[u64], width: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut values = self.scratch.borrow_mut();
        self.plan
            .eval_wide_into(inputs, width, &mut values, &mut out);
        out
    }
}

/// A [`Simulator`] *is* a bit-parallel word function — the MIG side of
/// every differential check in the workspace (see
/// [`crate::check_word_functions`]).
impl crate::equivalence::WordFunction for Simulator<'_> {
    fn input_count(&self) -> usize {
        self.graph.input_count()
    }

    fn output_count(&self) -> usize {
        self.graph.output_count()
    }

    fn eval_block(&mut self, inputs: &[u64]) -> Vec<u64> {
        self.eval_words(inputs)
    }

    fn eval_wide(&mut self, inputs: &[u64], width: usize) -> Vec<u64> {
        Simulator::eval_wide(self, inputs, width)
    }

    fn output_name(&self, position: usize) -> String {
        self.graph.outputs()[position].name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_semantics() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 3);
        let m = g.add_maj(ins[0], ins[1], ins[2]);
        g.add_output("m", m);
        let sim = Simulator::new(&g);
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 != 0).collect();
            let expect = p.count_ones() >= 2;
            assert_eq!(sim.eval(&bits)[0], expect, "pattern {p:03b}");
        }
    }

    #[test]
    fn complemented_edges_and_outputs() {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.add_and(!a, b);
        g.add_output("f", !f);
        let sim = Simulator::new(&g);
        // !( !a & b )
        assert_eq!(sim.eval(&[false, true]), vec![false]);
        assert_eq!(sim.eval(&[true, true]), vec![true]);
        assert_eq!(sim.eval(&[false, false]), vec![true]);
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        let mut g = Mig::new();
        let ins = g.add_inputs("x", 4);
        let m1 = g.add_maj(ins[0], !ins[1], ins[2]);
        let m2 = g.add_maj(m1, ins[3], !ins[0]);
        let x = g.add_xor(m1, m2);
        g.add_output("f", x);
        let sim = Simulator::new(&g);

        // All 16 patterns packed into one word evaluation.
        let words: Vec<u64> = (0..4)
            .map(|i| {
                let mut w = 0u64;
                for p in 0..16u64 {
                    if p >> i & 1 != 0 {
                        w |= 1 << p;
                    }
                }
                w
            })
            .collect();
        let word_out = sim.eval_words(&words)[0];
        for p in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(sim.eval(&bits)[0], word_out >> p & 1 != 0, "pattern {p}");
        }
    }

    #[test]
    fn wide_eval_is_independent_word_evals() {
        let g = crate::random_mig(crate::RandomMigConfig {
            inputs: 9,
            outputs: 4,
            gates: 150,
            depth: 8,
            seed: 42,
        });
        let sim = Simulator::new(&g);
        // 5 blocks of deterministic pseudo-random words (including the
        // runtime-width fallback path: 5 has no monomorphized kernel).
        for width in [2usize, 3, 4, 5, 8] {
            let wide: Vec<u64> = (0..9 * width)
                .map(|k| (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5)
                .collect();
            let wide_out = sim.eval_wide(&wide, width);
            for j in 0..width {
                let block: Vec<u64> = (0..9).map(|i| wide[i * width + j]).collect();
                let narrow = sim.eval_words(&block);
                for (o, &w) in narrow.iter().enumerate() {
                    assert_eq!(
                        w,
                        wide_out[o * width + j],
                        "width {width}, block {j}, output {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_plan_simulators_agree() {
        let g = crate::random_mig(crate::RandomMigConfig {
            inputs: 6,
            outputs: 3,
            gates: 60,
            depth: 6,
            seed: 7,
        });
        let sim = Simulator::new(&g);
        let worker = Simulator::with_plan(&g, sim.plan());
        let words: Vec<u64> = (0..6)
            .map(|i| 0xABCD_EF01_2345_6789u64.rotate_left(i))
            .collect();
        assert_eq!(sim.eval_words(&words), worker.eval_words(&words));
    }

    #[test]
    fn constant_outputs() {
        let mut g = Mig::new();
        let _ = g.add_input("a");
        g.add_output("zero", crate::Signal::ZERO);
        g.add_output("one", crate::Signal::ONE);
        let sim = Simulator::new(&g);
        assert_eq!(sim.eval(&[true]), vec![false, true]);
    }
}
