//! Combinational equivalence checking — the workspace's one
//! differential-verification engine.
//!
//! Any two implementations of the bit-parallel [`WordFunction`]
//! contract (64 input patterns per `u64` word) can be compared under an
//! [`EquivalencePolicy`]:
//!
//! * **Exhaustive** for small input counts: all `2^n` patterns swept in
//!   64-wide [`PatternBlock`]s — a *proof*, with no truth-table
//!   materialization, practical up to ~20 inputs (2^20 patterns is
//!   16384 block evaluations per side).
//! * **Seeded stratified sampling** beyond: a corner block (all-zero,
//!   all-ones, one-hot patterns) followed by rounds of biased-density
//!   random words cycling through activation densities from 1/16 to
//!   15/16, so both sparse and dense input activity is exercised — the
//!   standard pragmatic check for synthesis transforms that are correct
//!   by construction.
//!
//! [`check_equivalence`] compares two [`Mig`]s through this engine; the
//! `wavepipe` crate compares mapped netlists against their source MIGs
//! through the same engine (`wavepipe::differential`), so every
//! differential check in the workspace shares one implementation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Mig;
use crate::simulate::Simulator;

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Equivalence {
    /// Functions proven identical on all input patterns.
    Equal,
    /// Functions identical on every simulated random pattern (not a
    /// proof).
    ProbablyEqual {
        /// Number of 64-pattern simulation rounds that were run.
        rounds: usize,
    },
    /// A distinguishing input pattern was found for the named output.
    NotEqual {
        /// Name of the first mismatching output.
        output: String,
        /// Input assignment (one bool per input, declaration order).
        pattern: Vec<bool>,
    },
}

impl Equivalence {
    /// `true` unless a counterexample was found.
    pub fn holds(&self) -> bool {
        !matches!(self, Equivalence::NotEqual { .. })
    }
}

/// Errors raised when two functions cannot even be compared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// Input counts differ.
    InputCountMismatch {
        /// Inputs of the left function.
        left: usize,
        /// Inputs of the right function.
        right: usize,
    },
    /// Output counts differ.
    OutputCountMismatch {
        /// Outputs of the left function.
        left: usize,
        /// Outputs of the right function.
        right: usize,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::InputCountMismatch { left, right } => {
                write!(f, "input count mismatch: {left} vs {right}")
            }
            CheckError::OutputCountMismatch { left, right } => {
                write!(f, "output count mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Default number of 64-pattern random rounds for large functions.
pub const DEFAULT_RANDOM_ROUNDS: usize = 256;

/// Default exhaustive ceiling: functions with at most this many inputs
/// are proven over all `2^n` patterns (1024 block evaluations at 16
/// inputs).
pub const DEFAULT_EXHAUSTIVE_INPUTS: u32 = 16;

/// The default seed of [`check_equivalence`].
pub const DEFAULT_SEED: u64 = 0xDA7E_2017;

/// How hard a differential check works: exhaustive up to a ceiling,
/// seeded stratified sampling beyond.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EquivalencePolicy {
    /// Functions with at most this many inputs are checked exhaustively
    /// (all `2^n` patterns, swept in 64-wide blocks). Cost doubles per
    /// input: ~20 is the practical ceiling (16384 blocks per side).
    pub exhaustive_inputs: u32,
    /// Number of 64-pattern sampling rounds beyond the exhaustive
    /// ceiling. Round 0 is a deterministic-corner block (all-zero,
    /// all-ones, one-hot patterns); later rounds cycle through biased
    /// bit densities.
    pub rounds: usize,
    /// RNG seed of the sampling rounds — identical policies replay the
    /// exact pattern sequence.
    pub seed: u64,
}

impl Default for EquivalencePolicy {
    /// Exhaustive up to [`DEFAULT_EXHAUSTIVE_INPUTS`],
    /// [`DEFAULT_RANDOM_ROUNDS`] sampling rounds beyond, seeded with
    /// [`DEFAULT_SEED`].
    fn default() -> EquivalencePolicy {
        EquivalencePolicy {
            exhaustive_inputs: DEFAULT_EXHAUSTIVE_INPUTS,
            rounds: DEFAULT_RANDOM_ROUNDS,
            seed: DEFAULT_SEED,
        }
    }
}

impl EquivalencePolicy {
    /// A policy that proves equivalence for up to `max_inputs` inputs
    /// (and falls back to the default sampling beyond).
    pub fn exhaustive(max_inputs: u32) -> EquivalencePolicy {
        EquivalencePolicy {
            exhaustive_inputs: max_inputs,
            ..EquivalencePolicy::default()
        }
    }

    /// A pure sampling policy: never exhaustive, `rounds` stratified
    /// 64-pattern rounds with the given seed.
    ///
    /// Note that `rounds == 0` makes the policy vacuous for any
    /// function above the exhaustive ceiling: the check returns
    /// [`Equivalence::ProbablyEqual`]` { rounds: 0 }` having compared
    /// zero patterns. The spec layer rejects such gates
    /// (`wavepipe::SpecError::EquivalenceGateZeroRounds`).
    pub fn sampled(rounds: usize, seed: u64) -> EquivalencePolicy {
        EquivalencePolicy {
            exhaustive_inputs: 0,
            rounds,
            seed,
        }
    }

    /// The same policy with a different sampling seed.
    pub fn with_seed(mut self, seed: u64) -> EquivalencePolicy {
        self.seed = seed;
        self
    }

    /// `true` if a function with `inputs` inputs is checked
    /// exhaustively under this policy.
    pub fn is_exhaustive_for(&self, inputs: usize) -> bool {
        inputs < 64 && inputs as u32 <= self.exhaustive_inputs
    }

    /// Number of input patterns this policy applies to a function with
    /// `inputs` inputs.
    pub fn patterns_for(&self, inputs: usize) -> u64 {
        if self.is_exhaustive_for(inputs) {
            1u64 << inputs
        } else {
            self.rounds as u64 * PatternBlock::LANES as u64
        }
    }
}

/// Default number of 64-lane words per wide sweep block (8 × 64 = 512
/// patterns per traversal; 8 adjacent `u64`s are exactly one 64-byte
/// cache line, so every random fan-in read is fully used).
pub const DEFAULT_BLOCK_WORDS: usize = 8;

/// *How* a block sweep executes — block width and worker count — as
/// opposed to the [`EquivalencePolicy`], which defines *what* is
/// checked. Splitting the two keeps execution knobs out of policy
/// equality, spec serialization and cache keys: any sweep
/// configuration produces bit-identical verdicts, so it must never
/// influence a cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// 64-lane words evaluated per traversal (≥ 1). Widths 1, 2, 4 and
    /// 8 hit monomorphized kernels in the flat-arena evaluators.
    pub block_words: usize,
    /// Worker threads the exhaustive/sampled sweeps shard over (≥ 1).
    /// Shards are contiguous block ranges merged in order, so the
    /// verdict — including the counterexample — is identical for every
    /// thread count.
    pub threads: usize,
}

impl Default for SweepConfig {
    /// [`DEFAULT_BLOCK_WORDS`]-wide blocks across all available cores.
    fn default() -> SweepConfig {
        SweepConfig {
            block_words: DEFAULT_BLOCK_WORDS,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl SweepConfig {
    /// The pre-wide behaviour: one 64-lane word per traversal, one
    /// thread.
    pub fn single_word() -> SweepConfig {
        SweepConfig {
            block_words: 1,
            threads: 1,
        }
    }

    /// The default configuration with the `WAVEPIPE_BLOCK_WORDS` and
    /// `WAVEPIPE_THREADS` environment overrides applied (unparsable or
    /// zero values are ignored).
    pub fn from_env() -> SweepConfig {
        let mut sweep = SweepConfig::default();
        if let Some(words) = env_knob("WAVEPIPE_BLOCK_WORDS") {
            sweep.block_words = words;
        }
        if let Some(threads) = env_knob("WAVEPIPE_THREADS") {
            sweep.threads = threads;
        }
        sweep
    }

    /// The same configuration with a different block width.
    pub fn with_block_words(mut self, block_words: usize) -> SweepConfig {
        self.block_words = block_words.max(1);
        self
    }

    /// The same configuration with a different worker count.
    pub fn with_threads(mut self, threads: usize) -> SweepConfig {
        self.threads = threads.max(1);
        self
    }
}

/// Reads a positive-integer environment knob; `None` when unset,
/// unparsable or zero.
fn env_knob(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
}

/// Bit patterns of the low-order selector words: bit `k` of
/// `EXHAUSTIVE_MASKS[i]` is `(k >> i) & 1`.
const EXHAUSTIVE_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Up to 64 input patterns packed bit-parallel: bit `k` of word `i` is
/// the value of input `i` in lane (pattern) `k` — the input shape
/// [`WordFunction::eval_block`] consumes.
///
/// Blocks are either packed from explicit patterns
/// ([`PatternBlock::pack`]) or generated as one 64-lane slice of an
/// exhaustive `2^n` sweep ([`PatternBlock::exhaustive`]).
///
/// # Examples
///
/// ```
/// use mig::PatternBlock;
///
/// let block = PatternBlock::pack(&[
///     vec![false, true],
///     vec![true, true],
/// ]);
/// assert_eq!(block.lanes(), 2);
/// assert_eq!(block.words(), &[0b10, 0b11]);
/// assert_eq!(block.pattern(0), vec![false, true]);
///
/// // Block 0 of an exhaustive 3-input sweep holds all 8 patterns.
/// let sweep = PatternBlock::exhaustive(3, 0);
/// assert_eq!(sweep.lanes(), 8);
/// assert_eq!(sweep.pattern(5), vec![true, false, true]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternBlock {
    inputs: usize,
    lanes: usize,
    words: Vec<u64>,
}

impl PatternBlock {
    /// Number of lanes (patterns) a full block carries.
    pub const LANES: usize = 64;

    /// Packs up to 64 scalar patterns into one block.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty, holds more than 64 entries, or
    /// the patterns differ in width.
    pub fn pack(patterns: &[Vec<bool>]) -> PatternBlock {
        assert!(
            !patterns.is_empty() && patterns.len() <= Self::LANES,
            "a pattern block packs 1..=64 patterns, got {}",
            patterns.len()
        );
        let inputs = patterns[0].len();
        let mut words = vec![0u64; inputs];
        for (lane, pattern) in patterns.iter().enumerate() {
            assert_eq!(pattern.len(), inputs, "patterns must share a width");
            for (i, &bit) in pattern.iter().enumerate() {
                if bit {
                    words[i] |= 1 << lane;
                }
            }
        }
        PatternBlock {
            inputs,
            lanes: patterns.len(),
            words,
        }
    }

    /// Number of 64-lane blocks an exhaustive sweep over `inputs`
    /// variables needs (`⌈2^inputs / 64⌉`, at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `inputs >= 64` (the pattern count would overflow; use
    /// sampling for such functions).
    pub fn block_count(inputs: usize) -> u64 {
        assert!(inputs < 64, "exhaustive sweeps support at most 63 inputs");
        (1u64 << inputs).div_ceil(Self::LANES as u64).max(1)
    }

    /// Block `block` of the exhaustive sweep: lane `k` carries the
    /// input pattern whose binary encoding is `block * 64 + k` (input 0
    /// is the least-significant selector bit).
    ///
    /// # Panics
    ///
    /// Panics if `inputs >= 64` or `block >= block_count(inputs)`.
    pub fn exhaustive(inputs: usize, block: u64) -> PatternBlock {
        let blocks = Self::block_count(inputs);
        assert!(block < blocks, "block {block} out of range ({blocks})");
        let total = 1u64 << inputs;
        let base = block * Self::LANES as u64;
        let lanes = (total - base).min(Self::LANES as u64) as usize;
        let words = (0..inputs)
            .map(|i| {
                if i < EXHAUSTIVE_MASKS.len() {
                    // The low 6 selector bits cycle within the block.
                    EXHAUSTIVE_MASKS[i]
                } else if base >> i & 1 != 0 {
                    !0
                } else {
                    0
                }
            })
            .collect();
        PatternBlock {
            inputs,
            lanes,
            words,
        }
    }

    /// Pattern width (number of inputs).
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of meaningful lanes (1..=64); bits of lanes beyond this
    /// are don't-care.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask with one bit set per meaningful lane.
    pub fn lane_mask(&self) -> u64 {
        if self.lanes == Self::LANES {
            !0
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// The packed input words (one per input, in declaration order).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Unpacks lane `lane` back into a scalar pattern.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()`.
    pub fn pattern(&self, lane: usize) -> Vec<bool> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.words.iter().map(|w| w >> lane & 1 != 0).collect()
    }
}

/// A combinational function that evaluates 64 input patterns per call —
/// the contract the differential engine compares over. Implemented by
/// [`Simulator`] for MIGs and by `wavepipe`'s netlist adapter, so one
/// engine serves every "are these two still the same function?"
/// question in the workspace.
///
/// `eval_block` takes `&mut self` so implementations can reuse internal
/// scratch buffers across the thousands of blocks an exhaustive sweep
/// evaluates.
pub trait WordFunction {
    /// Number of primary inputs.
    fn input_count(&self) -> usize;

    /// Number of primary outputs.
    fn output_count(&self) -> usize;

    /// Evaluates 64 packed patterns: bit `k` of `inputs[i]` is input
    /// `i` in pattern `k`; returns one word per output.
    fn eval_block(&mut self, inputs: &[u64]) -> Vec<u64>;

    /// Evaluates `width` 64-lane blocks in one call: `inputs[i * width
    /// + j]` is word `j` of input `i`; the result holds word `j` of
    /// output `o` at `[o * width + j]`.
    ///
    /// The default implementation loops [`WordFunction::eval_block`]
    /// over the blocks, so every implementor is wide-correct by
    /// construction; flat-arena evaluators override it with a fused
    /// kernel that amortizes the traversal over all `width` words.
    fn eval_wide(&mut self, inputs: &[u64], width: usize) -> Vec<u64> {
        assert!(width > 0, "a wide evaluation needs at least one block");
        let n = self.input_count();
        assert_eq!(
            inputs.len(),
            n * width,
            "input pattern width must match input_count() * width"
        );
        let mut out = vec![0u64; self.output_count() * width];
        let mut block = vec![0u64; n];
        for j in 0..width {
            for (i, word) in block.iter_mut().enumerate() {
                *word = inputs[i * width + j];
            }
            for (o, word) in self.eval_block(&block).into_iter().enumerate() {
                out[o * width + j] = word;
            }
        }
        out
    }

    /// Display name of output `position` (used in counterexamples).
    fn output_name(&self, position: usize) -> String {
        format!("o{position}")
    }
}

/// The corner block of the sampling path: lane 0 is the all-zero
/// pattern, lane 1 all-ones, lane `2 + j` the one-hot pattern of input
/// `j`; leftover lanes stay uniformly random.
fn corner_block(inputs: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..inputs)
        .map(|i| {
            let mut word: u64 = rng.gen();
            word &= !1; // lane 0: all inputs low
            word |= 2; // lane 1: all inputs high
            for lane in 2..PatternBlock::LANES {
                if lane - 2 < inputs {
                    let bit = 1u64 << lane;
                    if lane - 2 == i {
                        word |= bit;
                    } else {
                        word &= !bit;
                    }
                }
            }
            word
        })
        .collect()
}

/// One stratified sampling round: the activation density cycles through
/// {1/2, 1/4, 3/4, 1/8, 7/8, 1/16, 15/16} so sparse and dense input
/// activity are both exercised.
fn stratified_block(inputs: usize, round: usize, rng: &mut StdRng) -> Vec<u64> {
    let stratum = (round - 1) % 7;
    (0..inputs)
        .map(|_| {
            let a: u64 = rng.gen();
            match stratum {
                0 => a,
                1 => a & rng.gen::<u64>(),
                2 => a | rng.gen::<u64>(),
                3 => a & rng.gen::<u64>() & rng.gen::<u64>(),
                4 => a | rng.gen::<u64>() | rng.gen::<u64>(),
                5 => a & rng.gen::<u64>() & rng.gen::<u64>() & rng.gen::<u64>(),
                _ => a | rng.gen::<u64>() | rng.gen::<u64>() | rng.gen::<u64>(),
            }
        })
        .collect()
}

/// Checks that two word functions have comparable interfaces.
fn interface_check(
    left: &(impl WordFunction + ?Sized),
    right: &(impl WordFunction + ?Sized),
) -> Result<(), CheckError> {
    if left.input_count() != right.input_count() {
        return Err(CheckError::InputCountMismatch {
            left: left.input_count(),
            right: right.input_count(),
        });
    }
    if left.output_count() != right.output_count() {
        return Err(CheckError::OutputCountMismatch {
            left: left.output_count(),
            right: right.output_count(),
        });
    }
    Ok(())
}

/// Word of input `i` in block `block` of the exhaustive sweep — the
/// generator behind [`PatternBlock::exhaustive`], usable without
/// materializing a block.
fn exhaustive_word(i: usize, block: u64) -> u64 {
    if i < EXHAUSTIVE_MASKS.len() {
        EXHAUSTIVE_MASKS[i]
    } else if (block * PatternBlock::LANES as u64) >> i & 1 != 0 {
        !0
    } else {
        0
    }
}

/// Meaningful-lane mask of block `block` of an exhaustive sweep over
/// `inputs` variables (only the final block can be partial).
fn block_lane_mask(inputs: usize, block: u64) -> u64 {
    let total = 1u64 << inputs;
    let base = block * PatternBlock::LANES as u64;
    let lanes = (total - base).min(PatternBlock::LANES as u64);
    if lanes == PatternBlock::LANES as u64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// The first divergence found in a contiguous sweep range, in the
/// canonical order: block ascending, then output ascending, then lane
/// ascending — the order every execution shape (narrow, wide, sharded)
/// reports, which is what makes verdicts bit-identical across
/// [`SweepConfig`]s.
#[derive(Clone, Copy, Debug)]
struct Divergence {
    /// Exhaustive block index, or sampling round.
    at: u64,
    /// Position of the first diverging output within that block.
    output: usize,
    /// First diverging lane of that output.
    lane: u32,
}

/// Scans exhaustive blocks `[start, end)` in `block_words`-wide strides
/// and returns the range's first divergence (canonical order).
fn scan_exhaustive_range<L, R>(
    left: &mut L,
    right: &mut R,
    inputs: usize,
    start: u64,
    end: u64,
    block_words: usize,
) -> Option<Divergence>
where
    L: WordFunction + ?Sized,
    R: WordFunction + ?Sized,
{
    let width = block_words.max(1);
    let mut buf = vec![0u64; inputs * width];
    let mut block = start;
    while block < end {
        let w = ((end - block) as usize).min(width);
        for i in 0..inputs {
            for j in 0..w {
                buf[i * w + j] = exhaustive_word(i, block + j as u64);
            }
        }
        let lo = left.eval_wide(&buf[..inputs * w], w);
        let ro = right.eval_wide(&buf[..inputs * w], w);
        let outputs = lo.len() / w;
        for j in 0..w {
            let mask = block_lane_mask(inputs, block + j as u64);
            for o in 0..outputs {
                let diff = (lo[o * w + j] ^ ro[o * w + j]) & mask;
                if diff != 0 {
                    return Some(Divergence {
                        at: block + j as u64,
                        output: o,
                        lane: diff.trailing_zeros(),
                    });
                }
            }
        }
        block += w as u64;
    }
    None
}

/// Scans sampling rounds `[start, end)` of a pregenerated round list in
/// `block_words`-wide strides; first divergence in canonical order.
fn scan_sampled_range<L, R>(
    left: &mut L,
    right: &mut R,
    rounds: &[Vec<u64>],
    start: usize,
    end: usize,
    block_words: usize,
) -> Option<Divergence>
where
    L: WordFunction + ?Sized,
    R: WordFunction + ?Sized,
{
    let width = block_words.max(1);
    let inputs = rounds.first().map_or(0, Vec::len);
    let mut buf = vec![0u64; inputs * width];
    let mut round = start;
    while round < end {
        let w = (end - round).min(width);
        for i in 0..inputs {
            for j in 0..w {
                buf[i * w + j] = rounds[round + j][i];
            }
        }
        let lo = left.eval_wide(&buf[..inputs * w], w);
        let ro = right.eval_wide(&buf[..inputs * w], w);
        let outputs = lo.len() / w;
        for j in 0..w {
            for o in 0..outputs {
                let diff = lo[o * w + j] ^ ro[o * w + j];
                if diff != 0 {
                    return Some(Divergence {
                        at: (round + j) as u64,
                        output: o,
                        lane: diff.trailing_zeros(),
                    });
                }
            }
        }
        round += w;
    }
    None
}

/// Generates the policy's full sampling schedule: round 0 is the corner
/// block, later rounds stratified densities, all drawn from one
/// sequential seeded stream — so the schedule is identical however the
/// rounds are then sharded.
fn sampling_rounds(inputs: usize, policy: &EquivalencePolicy) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(policy.seed);
    (0..policy.rounds)
        .map(|round| {
            if round == 0 {
                corner_block(inputs, &mut rng)
            } else {
                stratified_block(inputs, round, &mut rng)
            }
        })
        .collect()
}

/// Splits `total` work items into at most `shards` contiguous,
/// near-equal ranges.
fn shard_ranges(total: u64, shards: usize) -> Vec<(u64, u64)> {
    let shards = (shards.max(1) as u64).min(total.max(1));
    let base = total / shards;
    let extra = total % shards;
    let mut ranges = Vec::with_capacity(shards as usize);
    let mut start = 0;
    for s in 0..shards {
        let len = base + u64::from(s < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Turns a raw exhaustive-sweep divergence into a counterexample.
fn exhaustive_counterexample(
    left: &(impl WordFunction + ?Sized),
    inputs: usize,
    d: Divergence,
) -> Equivalence {
    Equivalence::NotEqual {
        output: left.output_name(d.output),
        pattern: PatternBlock::exhaustive(inputs, d.at).pattern(d.lane as usize),
    }
}

/// Turns a raw sampling divergence into a counterexample.
fn sampled_counterexample(
    left: &(impl WordFunction + ?Sized),
    rounds: &[Vec<u64>],
    d: Divergence,
) -> Equivalence {
    Equivalence::NotEqual {
        output: left.output_name(d.output),
        pattern: rounds[d.at as usize]
            .iter()
            .map(|w| w >> d.lane & 1 != 0)
            .collect(),
    }
}

/// Compares two [`WordFunction`]s under a policy — the engine behind
/// [`check_equivalence`] and `wavepipe::differential::check`.
///
/// Outputs are matched by position, not by name; counterexamples are
/// named after the **left** function's outputs and report the first
/// divergence in canonical order (block, then output, then lane).
///
/// Blocks are swept [`SweepConfig::from_env`]`().block_words` wide on
/// the calling thread; [`check_word_functions_sharded`] is the
/// multi-worker variant (its verdicts are bit-identical to this one's
/// by construction).
///
/// # Errors
///
/// Returns [`CheckError`] if the interfaces (input/output counts)
/// differ.
pub fn check_word_functions<L, R>(
    left: &mut L,
    right: &mut R,
    policy: &EquivalencePolicy,
) -> Result<Equivalence, CheckError>
where
    L: WordFunction + ?Sized,
    R: WordFunction + ?Sized,
{
    interface_check(left, right)?;
    let n = left.input_count();
    let width = SweepConfig::from_env().block_words;

    if policy.is_exhaustive_for(n) {
        let blocks = PatternBlock::block_count(n);
        return Ok(
            match scan_exhaustive_range(left, right, n, 0, blocks, width) {
                Some(d) => exhaustive_counterexample(left, n, d),
                None => Equivalence::Equal,
            },
        );
    }

    let rounds = sampling_rounds(n, policy);
    Ok(
        match scan_sampled_range(left, right, &rounds, 0, policy.rounds, width) {
            Some(d) => sampled_counterexample(left, &rounds, d),
            None => Equivalence::ProbablyEqual {
                rounds: policy.rounds,
            },
        },
    )
}

/// Multi-worker [`check_word_functions`]: the sweep's blocks (or
/// sampling rounds) are split into contiguous ranges, scanned in
/// parallel by per-worker function instances from the two factories,
/// and merged in range order — each range reports its first divergence
/// in the canonical (block, output, lane) order, and the merged verdict
/// is the first reporting range's, so the result (counterexample
/// included) is **bit-identical for every `threads` / `block_words`
/// combination**, including `threads: 1`.
///
/// The factories run once per worker; give them cheap construction by
/// sharing prepared state (e.g. [`Simulator::with_plan`] over one
/// [`crate::SimPlan`]).
///
/// # Errors
///
/// Returns [`CheckError`] if the interfaces (input/output counts)
/// differ.
pub fn check_word_functions_sharded<L, R, FL, FR>(
    make_left: FL,
    make_right: FR,
    policy: &EquivalencePolicy,
    sweep: &SweepConfig,
) -> Result<Equivalence, CheckError>
where
    L: WordFunction,
    R: WordFunction,
    FL: Fn() -> L + Sync,
    FR: Fn() -> R + Sync,
{
    let mut left = make_left();
    let mut right = make_right();
    interface_check(&left, &right)?;
    let n = left.input_count();
    let width = sweep.block_words.max(1);

    if policy.is_exhaustive_for(n) {
        let blocks = PatternBlock::block_count(n);
        let first = if sweep.threads <= 1 {
            scan_exhaustive_range(&mut left, &mut right, n, 0, blocks, width)
        } else {
            use rayon::prelude::*;
            let ranges = shard_ranges(blocks, sweep.threads);
            let found: Vec<Option<Divergence>> = ranges
                .par_iter()
                .map(|&(start, end)| {
                    let mut l = make_left();
                    let mut r = make_right();
                    scan_exhaustive_range(&mut l, &mut r, n, start, end, width)
                })
                .collect();
            found.into_iter().flatten().next()
        };
        return Ok(match first {
            Some(d) => exhaustive_counterexample(&left, n, d),
            None => Equivalence::Equal,
        });
    }

    let rounds = sampling_rounds(n, policy);
    let first = if sweep.threads <= 1 {
        scan_sampled_range(&mut left, &mut right, &rounds, 0, policy.rounds, width)
    } else {
        use rayon::prelude::*;
        let ranges = shard_ranges(policy.rounds as u64, sweep.threads);
        let rounds_ref = &rounds;
        let found: Vec<Option<Divergence>> = ranges
            .par_iter()
            .map(|&(start, end)| {
                let mut l = make_left();
                let mut r = make_right();
                scan_sampled_range(
                    &mut l,
                    &mut r,
                    rounds_ref,
                    start as usize,
                    end as usize,
                    width,
                )
            })
            .collect();
        found.into_iter().flatten().next()
    };
    Ok(match first {
        Some(d) => sampled_counterexample(&left, &rounds, d),
        None => Equivalence::ProbablyEqual {
            rounds: policy.rounds,
        },
    })
}

/// [`check_equivalence`] under an explicit [`EquivalencePolicy`].
///
/// Runs on the sharded engine under [`SweepConfig::from_env`]: both
/// graphs are flattened once and the per-worker simulators share the
/// plans, so the parallel fan-out costs no re-preparation.
///
/// # Errors
///
/// Returns [`CheckError`] if the interfaces (input/output counts) differ.
pub fn check_equivalence_with_policy(
    left: &Mig,
    right: &Mig,
    policy: &EquivalencePolicy,
) -> Result<Equivalence, CheckError> {
    let left_plan = std::sync::Arc::new(crate::simulate::SimPlan::build(left));
    let right_plan = std::sync::Arc::new(crate::simulate::SimPlan::build(right));
    check_word_functions_sharded(
        || Simulator::with_plan(left, left_plan.clone()),
        || Simulator::with_plan(right, right_plan.clone()),
        policy,
        &SweepConfig::from_env(),
    )
}

/// Checks combinational equivalence of `left` and `right`.
///
/// Outputs are matched by position, not by name. Graphs with at most
/// [`DEFAULT_EXHAUSTIVE_INPUTS`] inputs are *proven* equivalent (or
/// not) over all `2^n` patterns, swept bit-parallel in 64-wide blocks;
/// larger graphs are checked with [`DEFAULT_RANDOM_ROUNDS`] rounds of
/// seeded stratified simulation (64 patterns per round).
///
/// # Errors
///
/// Returns [`CheckError`] if the interfaces (input/output counts) differ.
///
/// # Examples
///
/// ```
/// use mig::{check_equivalence, Equivalence, Mig};
///
/// # fn main() -> Result<(), mig::CheckError> {
/// let mut g1 = Mig::new();
/// let a = g1.add_input("a");
/// let b = g1.add_input("b");
/// let f = g1.add_and(a, b);
/// g1.add_output("f", f);
///
/// // De Morgan variant of the same function.
/// let mut g2 = Mig::new();
/// let a = g2.add_input("a");
/// let b = g2.add_input("b");
/// let f = g2.add_or(!a, !b);
/// g2.add_output("f", !f);
///
/// assert_eq!(check_equivalence(&g1, &g2)?, Equivalence::Equal);
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(left: &Mig, right: &Mig) -> Result<Equivalence, CheckError> {
    check_equivalence_seeded(left, right, DEFAULT_SEED)
}

/// [`check_equivalence`] with an explicit random seed for the fallback
/// sampling path.
///
/// # Errors
///
/// Returns [`CheckError`] if the interfaces (input/output counts) differ.
pub fn check_equivalence_seeded(
    left: &Mig,
    right: &Mig,
    seed: u64,
) -> Result<Equivalence, CheckError> {
    check_equivalence_with_policy(left, right, &EquivalencePolicy::default().with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_graph(swap: bool) -> Mig {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let (s, cy) = if swap {
            g.add_full_adder(c, a, b)
        } else {
            g.add_full_adder(a, b, c)
        };
        g.add_output("s", s);
        g.add_output("cy", cy);
        g
    }

    #[test]
    fn commuted_adders_are_equal() {
        let r = check_equivalence(&adder_graph(false), &adder_graph(true)).unwrap();
        assert_eq!(r, Equivalence::Equal);
        assert!(r.holds());
    }

    #[test]
    fn different_functions_yield_counterexample() {
        let mut g1 = Mig::new();
        let a = g1.add_input("a");
        let b = g1.add_input("b");
        let f = g1.add_and(a, b);
        g1.add_output("f", f);

        let mut g2 = Mig::new();
        let a = g2.add_input("a");
        let b = g2.add_input("b");
        let f = g2.add_or(a, b);
        g2.add_output("f", f);

        match check_equivalence(&g1, &g2).unwrap() {
            Equivalence::NotEqual { output, pattern } => {
                assert_eq!(output, "f");
                // The counterexample must actually distinguish AND from OR.
                let ones = pattern.iter().filter(|&&b| b).count();
                assert_eq!(ones, 1, "AND and OR differ exactly on one-hot patterns");
            }
            other => panic!("expected NotEqual, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let mut g1 = Mig::new();
        g1.add_input("a");
        let mut g2 = Mig::new();
        g2.add_input("a");
        g2.add_input("b");
        assert!(matches!(
            check_equivalence(&g1, &g2),
            Err(CheckError::InputCountMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn large_graphs_use_random_simulation() {
        // 40-input parity vs the same parity with reordered reduction.
        let build = |chunked: bool| {
            let mut g = Mig::new();
            let ins = g.add_inputs("x", 40);
            let p = if chunked {
                let front = g.add_xor_n(&ins[..20]);
                let back = g.add_xor_n(&ins[20..]);
                g.add_xor(front, back)
            } else {
                g.add_xor_n(&ins)
            };
            g.add_output("p", p);
            g
        };
        let r = check_equivalence(&build(false), &build(true)).unwrap();
        assert!(matches!(
            r,
            Equivalence::ProbablyEqual {
                rounds: DEFAULT_RANDOM_ROUNDS
            }
        ));
        assert!(r.holds());
    }

    #[test]
    fn large_graph_counterexample_is_found() {
        let build = |broken: bool| {
            let mut g = Mig::new();
            let ins = g.add_inputs("x", 30);
            let mut p = g.add_xor_n(&ins);
            if broken {
                p = !p;
            }
            g.add_output("p", p);
            g
        };
        let r = check_equivalence(&build(false), &build(true)).unwrap();
        assert!(!r.holds());
    }

    #[test]
    fn exhaustive_blocks_enumerate_every_pattern_once() {
        for inputs in [0usize, 1, 3, 6, 7, 9] {
            let mut seen = vec![false; 1 << inputs];
            for block in 0..PatternBlock::block_count(inputs) {
                let b = PatternBlock::exhaustive(inputs, block);
                for lane in 0..b.lanes() {
                    let pattern = b.pattern(lane);
                    let code: usize = pattern
                        .iter()
                        .enumerate()
                        .map(|(i, &bit)| usize::from(bit) << i)
                        .sum();
                    assert_eq!(
                        code as u64,
                        block * 64 + lane as u64,
                        "lane encodes its pattern index"
                    );
                    assert!(!seen[code], "pattern {code} repeated");
                    seen[code] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{inputs} inputs: sweep incomplete");
        }
    }

    #[test]
    fn pack_round_trips_patterns() {
        let patterns = vec![
            vec![true, false, true, true],
            vec![false, false, false, false],
            vec![true, true, true, true],
        ];
        let block = PatternBlock::pack(&patterns);
        assert_eq!(block.lanes(), 3);
        assert_eq!(block.inputs(), 4);
        assert_eq!(block.lane_mask(), 0b111);
        for (lane, p) in patterns.iter().enumerate() {
            assert_eq!(&block.pattern(lane), p);
        }
    }

    #[test]
    fn exhaustive_policy_proves_what_sampling_misses() {
        // Two 18-input functions differing on exactly one pattern
        // (the all-ones minterm): sampling's corner block catches it
        // (lane 1 is all-ones), and the exhaustive policy proves the
        // unbroken pair equal.
        let build = |broken: bool| {
            let mut g = Mig::new();
            let ins = g.add_inputs("x", 18);
            let conj = ins.iter().skip(1).fold(ins[0], |acc, &s| g.add_and(acc, s));
            let p = g.add_xor_n(&ins);
            let f = if broken { g.add_xor(p, conj) } else { p };
            g.add_output("f", f);
            g
        };
        let exhaustive = EquivalencePolicy::exhaustive(18);
        assert_eq!(
            check_equivalence_with_policy(&build(false), &build(false), &exhaustive).unwrap(),
            Equivalence::Equal
        );
        let r = check_equivalence_with_policy(&build(false), &build(true), &exhaustive).unwrap();
        match &r {
            Equivalence::NotEqual { pattern, .. } => {
                assert!(
                    pattern.iter().all(|&b| b),
                    "only the all-ones minterm flips"
                );
            }
            other => panic!("expected NotEqual, got {other:?}"),
        }
        // The stratified sampler finds it too (corner lane 1 = all-ones).
        let sampled = EquivalencePolicy::sampled(4, 1);
        assert!(
            !check_equivalence_with_policy(&build(false), &build(true), &sampled)
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn sharded_verdicts_are_bit_identical_across_sweep_configs() {
        // One exhaustive pair and one sampled pair, each with a real
        // divergence, swept under every (threads, block_words)
        // combination: the verdict — counterexample included — must be
        // byte-for-byte the sequential engine's.
        let broken_pair = |inputs: usize| {
            let build = |broken: bool| {
                let mut g = Mig::new();
                let ins = g.add_inputs("x", inputs);
                let conj = ins.iter().skip(1).fold(ins[0], |acc, &s| g.add_and(acc, s));
                let p = g.add_xor_n(&ins);
                let f = if broken { g.add_xor(p, conj) } else { p };
                g.add_output("f", f);
                g
            };
            (build(false), build(true))
        };
        for (inputs, policy) in [
            (10, EquivalencePolicy::exhaustive(10)),
            (30, EquivalencePolicy::sampled(16, 3)),
        ] {
            let (good, bad) = broken_pair(inputs);
            let reference = check_word_functions(
                &mut Simulator::new(&good),
                &mut Simulator::new(&bad),
                &policy,
            )
            .unwrap();
            assert!(!reference.holds());
            for threads in [1usize, 2, 8] {
                for block_words in [1usize, 3, 8] {
                    let sweep = SweepConfig::single_word()
                        .with_threads(threads)
                        .with_block_words(block_words);
                    let sharded = check_word_functions_sharded(
                        || Simulator::new(&good),
                        || Simulator::new(&bad),
                        &policy,
                        &sweep,
                    )
                    .unwrap();
                    assert_eq!(
                        sharded, reference,
                        "{inputs} inputs, {threads} threads, {block_words} words"
                    );
                }
            }
            // And the equivalent pair stays equivalent under sharding.
            let twin = good.clone();
            let clean = check_word_functions_sharded(
                || Simulator::new(&good),
                || Simulator::new(&twin),
                &policy,
                &SweepConfig::default().with_threads(4),
            )
            .unwrap();
            assert!(clean.holds());
        }
    }

    #[test]
    fn sweep_config_knobs_clamp_and_default() {
        let d = SweepConfig::default();
        assert_eq!(d.block_words, DEFAULT_BLOCK_WORDS);
        assert!(d.threads >= 1);
        assert_eq!(
            SweepConfig::single_word().with_block_words(0).block_words,
            1
        );
        assert_eq!(SweepConfig::single_word().with_threads(0).threads, 1);
    }

    #[test]
    fn policy_pattern_accounting() {
        let p = EquivalencePolicy::default();
        assert!(p.is_exhaustive_for(16));
        assert!(!p.is_exhaustive_for(17));
        assert_eq!(p.patterns_for(10), 1024);
        assert_eq!(p.patterns_for(40), 256 * 64);
        assert_eq!(EquivalencePolicy::sampled(8, 1).patterns_for(4), 8 * 64);
    }
}
