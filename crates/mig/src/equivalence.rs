//! Combinational equivalence checking between two MIGs.
//!
//! Small graphs (≤ 20 inputs) are compared exhaustively via
//! [`TruthTable`]; larger graphs fall back to seeded random bit-parallel
//! simulation, which is the standard pragmatic check for synthesis
//! transforms that are correct by construction (the transforms in this
//! workspace additionally carry structural proofs/tests of their own).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Mig;
use crate::simulate::Simulator;
use crate::truth_table::TruthTable;

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Equivalence {
    /// Functions proven identical on all input patterns.
    Equal,
    /// Functions identical on every simulated random pattern (not a
    /// proof).
    ProbablyEqual {
        /// Number of 64-pattern simulation rounds that were run.
        rounds: usize,
    },
    /// A distinguishing input pattern was found for the named output.
    NotEqual {
        /// Name of the first mismatching output.
        output: String,
        /// Input assignment (one bool per input, declaration order).
        pattern: Vec<bool>,
    },
}

impl Equivalence {
    /// `true` unless a counterexample was found.
    pub fn holds(&self) -> bool {
        !matches!(self, Equivalence::NotEqual { .. })
    }
}

/// Errors raised when two graphs cannot even be compared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// Input counts differ.
    InputCountMismatch {
        /// Inputs of the left graph.
        left: usize,
        /// Inputs of the right graph.
        right: usize,
    },
    /// Output counts differ.
    OutputCountMismatch {
        /// Outputs of the left graph.
        left: usize,
        /// Outputs of the right graph.
        right: usize,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::InputCountMismatch { left, right } => {
                write!(f, "input count mismatch: {left} vs {right}")
            }
            CheckError::OutputCountMismatch { left, right } => {
                write!(f, "output count mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Default number of 64-pattern random rounds for large graphs.
pub const DEFAULT_RANDOM_ROUNDS: usize = 256;

/// Checks combinational equivalence of `left` and `right`.
///
/// Outputs are matched by position, not by name. Graphs with at most
/// [`TruthTable::MAX_INPUTS`] inputs are checked exhaustively; larger
/// graphs are checked with [`DEFAULT_RANDOM_ROUNDS`] rounds of seeded
/// random simulation (64 patterns per round).
///
/// # Errors
///
/// Returns [`CheckError`] if the interfaces (input/output counts) differ.
///
/// # Examples
///
/// ```
/// use mig::{check_equivalence, Equivalence, Mig};
///
/// # fn main() -> Result<(), mig::CheckError> {
/// let mut g1 = Mig::new();
/// let a = g1.add_input("a");
/// let b = g1.add_input("b");
/// let f = g1.add_and(a, b);
/// g1.add_output("f", f);
///
/// // De Morgan variant of the same function.
/// let mut g2 = Mig::new();
/// let a = g2.add_input("a");
/// let b = g2.add_input("b");
/// let f = g2.add_or(!a, !b);
/// g2.add_output("f", !f);
///
/// assert_eq!(check_equivalence(&g1, &g2)?, Equivalence::Equal);
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(left: &Mig, right: &Mig) -> Result<Equivalence, CheckError> {
    check_equivalence_seeded(left, right, 0xDA7E_2017)
}

/// [`check_equivalence`] with an explicit random seed for the fallback
/// simulation path.
///
/// # Errors
///
/// Returns [`CheckError`] if the interfaces (input/output counts) differ.
pub fn check_equivalence_seeded(
    left: &Mig,
    right: &Mig,
    seed: u64,
) -> Result<Equivalence, CheckError> {
    if left.input_count() != right.input_count() {
        return Err(CheckError::InputCountMismatch {
            left: left.input_count(),
            right: right.input_count(),
        });
    }
    if left.output_count() != right.output_count() {
        return Err(CheckError::OutputCountMismatch {
            left: left.output_count(),
            right: right.output_count(),
        });
    }

    let n = left.input_count();
    // 14 is comfortably below `TruthTable::MAX_INPUTS`; beyond it the
    // exhaustive table is too expensive and we sample instead.
    if n <= 14 {
        // Exhaustive proof for small graphs.
        let lt = TruthTable::of_graph(left);
        let rt = TruthTable::of_graph(right);
        for (o, (a, b)) in lt.iter().zip(&rt).enumerate() {
            if a != b {
                let p = (0..a.pattern_count())
                    .find(|&p| a.bit(p) != b.bit(p))
                    .expect("tables differ");
                return Ok(Equivalence::NotEqual {
                    output: left.outputs()[o].name.clone(),
                    pattern: (0..n).map(|i| p >> i & 1 != 0).collect(),
                });
            }
        }
        return Ok(Equivalence::Equal);
    }

    // Random bit-parallel simulation for large graphs.
    let lsim = Simulator::new(left);
    let rsim = Simulator::new(right);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..DEFAULT_RANDOM_ROUNDS {
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let lo = lsim.eval_words(&inputs);
        let ro = rsim.eval_words(&inputs);
        for (o, (a, b)) in lo.iter().zip(&ro).enumerate() {
            if a != b {
                let bit = (a ^ b).trailing_zeros() as usize;
                return Ok(Equivalence::NotEqual {
                    output: left.outputs()[o].name.clone(),
                    pattern: inputs.iter().map(|w| w >> bit & 1 != 0).collect(),
                });
            }
        }
    }
    Ok(Equivalence::ProbablyEqual {
        rounds: DEFAULT_RANDOM_ROUNDS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_graph(swap: bool) -> Mig {
        let mut g = Mig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let (s, cy) = if swap {
            g.add_full_adder(c, a, b)
        } else {
            g.add_full_adder(a, b, c)
        };
        g.add_output("s", s);
        g.add_output("cy", cy);
        g
    }

    #[test]
    fn commuted_adders_are_equal() {
        let r = check_equivalence(&adder_graph(false), &adder_graph(true)).unwrap();
        assert_eq!(r, Equivalence::Equal);
        assert!(r.holds());
    }

    #[test]
    fn different_functions_yield_counterexample() {
        let mut g1 = Mig::new();
        let a = g1.add_input("a");
        let b = g1.add_input("b");
        let f = g1.add_and(a, b);
        g1.add_output("f", f);

        let mut g2 = Mig::new();
        let a = g2.add_input("a");
        let b = g2.add_input("b");
        let f = g2.add_or(a, b);
        g2.add_output("f", f);

        match check_equivalence(&g1, &g2).unwrap() {
            Equivalence::NotEqual { output, pattern } => {
                assert_eq!(output, "f");
                // The counterexample must actually distinguish AND from OR.
                let ones = pattern.iter().filter(|&&b| b).count();
                assert_eq!(ones, 1, "AND and OR differ exactly on one-hot patterns");
            }
            other => panic!("expected NotEqual, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let mut g1 = Mig::new();
        g1.add_input("a");
        let mut g2 = Mig::new();
        g2.add_input("a");
        g2.add_input("b");
        assert!(matches!(
            check_equivalence(&g1, &g2),
            Err(CheckError::InputCountMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn large_graphs_use_random_simulation() {
        // 40-input parity vs the same parity with reordered reduction.
        let build = |chunked: bool| {
            let mut g = Mig::new();
            let ins = g.add_inputs("x", 40);
            let p = if chunked {
                let front = g.add_xor_n(&ins[..20]);
                let back = g.add_xor_n(&ins[20..]);
                g.add_xor(front, back)
            } else {
                g.add_xor_n(&ins)
            };
            g.add_output("p", p);
            g
        };
        let r = check_equivalence(&build(false), &build(true)).unwrap();
        assert!(matches!(r, Equivalence::ProbablyEqual { .. }));
        assert!(r.holds());
    }

    #[test]
    fn large_graph_counterexample_is_found() {
        let build = |broken: bool| {
            let mut g = Mig::new();
            let ins = g.add_inputs("x", 30);
            let mut p = g.add_xor_n(&ins);
            if broken {
                p = !p;
            }
            g.add_output("p", p);
            g
        };
        let r = check_equivalence(&build(false), &build(true)).unwrap();
        assert!(!r.holds());
    }
}
