//! Seeded random MIG generation with size/depth targets.
//!
//! Used by the benchmark suite to reach the circuit-size span of the
//! paper's Fig 5 (10²–10⁵ nodes) with realistic level structure: gates
//! are spread over `depth` levels, each gate anchors one fan-in on the
//! previous level (preserving the target depth) and draws the remaining
//! fan-ins from earlier levels with random polarity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Mig;
use crate::signal::Signal;

/// Parameters for [`random_mig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomMigConfig {
    /// Number of primary inputs (≥ 3 recommended).
    pub inputs: usize,
    /// Number of primary outputs (≥ 1).
    pub outputs: usize,
    /// Target gate count (approximate; structural hashing may fold a few
    /// gates, the generator retries to stay close).
    pub gates: usize,
    /// Target depth (exact when `gates ≥ depth`).
    pub depth: u32,
    /// RNG seed — identical configs produce identical graphs.
    pub seed: u64,
}

impl Default for RandomMigConfig {
    fn default() -> RandomMigConfig {
        RandomMigConfig {
            inputs: 16,
            outputs: 8,
            gates: 200,
            depth: 10,
            seed: 0xD1CE,
        }
    }
}

/// Generates a pseudorandom MIG with the requested shape.
///
/// # Panics
///
/// Panics if `inputs < 2`, `outputs == 0`, `depth == 0`, or
/// `gates < depth` (at least one gate per level is needed to realize the
/// depth).
///
/// # Examples
///
/// ```
/// use mig::{random_mig, RandomMigConfig};
///
/// let g = random_mig(RandomMigConfig {
///     inputs: 12,
///     outputs: 4,
///     gates: 150,
///     depth: 9,
///     seed: 7,
/// });
/// assert_eq!(g.depth(), 9);
/// assert!(g.gate_count() >= 135 && g.gate_count() <= 150);
/// ```
pub fn random_mig(config: RandomMigConfig) -> Mig {
    assert!(config.inputs >= 2, "need at least 2 inputs");
    assert!(config.outputs >= 1, "need at least 1 output");
    assert!(config.depth >= 1, "depth must be positive");
    assert!(
        config.gates >= config.depth as usize,
        "need at least one gate per level ({} gates < depth {})",
        config.gates,
        config.depth
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Mig::with_name(format!("rand_s{}", config.seed));
    let inputs = g.add_inputs("pi", config.inputs);

    // Distribute gates over levels: one guaranteed per level, the rest
    // weighted towards mid levels (a loose bell shape, as in typical
    // mapped netlists).
    let depth = config.depth as usize;
    let mut per_level = vec![1usize; depth];
    let mut remaining = config.gates - depth;
    while remaining > 0 {
        let l = (rng.gen_range(0..depth) + rng.gen_range(0..depth)) / 2;
        per_level[l] += 1;
        remaining -= 1;
    }

    // levels[l] = signals whose level is exactly l (level 0 = inputs).
    // `node_levels` tracks per-node levels incrementally (nodes are
    // topologically indexed) so the generator stays O(gates · attempts).
    let mut levels: Vec<Vec<Signal>> = vec![inputs.clone()];
    let mut all_below: Vec<Signal> = inputs.clone();
    let mut node_levels: Vec<u32> = vec![0; g.node_count()];
    fn level_of(g: &Mig, node_levels: &mut Vec<u32>, s: Signal) -> u32 {
        while node_levels.len() < g.node_count() {
            let id = crate::NodeId::from_index(node_levels.len());
            let lvl = match g.node(id) {
                crate::Node::Majority(f) => {
                    1 + f
                        .iter()
                        .map(|x| node_levels[x.node().index()])
                        .max()
                        .expect("gates have fan-ins")
                }
                _ => 0,
            };
            node_levels.push(lvl);
        }
        node_levels[s.node().index()]
    }

    // Fan-in locality: real mapped netlists draw most fan-ins from
    // nearby levels; sample a backward distance from a geometric
    // distribution (P(δ = k) ∝ 2^-k) so edges mostly span 1–3 levels.
    fn pick_local(rng: &mut StdRng, levels: &[Vec<Signal>], current: usize) -> Signal {
        let mut delta = 0usize;
        while delta < current && rng.gen_bool(0.5) {
            delta += 1;
        }
        let lvl = &levels[current - delta];
        lvl[rng.gen_range(0..lvl.len())]
    }

    for (l, &count) in per_level.iter().enumerate() {
        let target_level = (l + 1) as u32;
        let mut this_level: Vec<Signal> = Vec::with_capacity(count);
        let mut seen = std::collections::HashSet::with_capacity(count * 2);
        for _ in 0..count {
            for _attempt in 0..16 {
                let prev = levels[l][rng.gen_range(0..levels[l].len())];
                let a = prev.complement_if(rng.gen());
                let b = pick_local(&mut rng, &levels, l).complement_if(rng.gen());
                let c = pick_local(&mut rng, &levels, l).complement_if(rng.gen());
                let s = g.add_maj(a, b, c);
                if level_of(&g, &mut node_levels, s) == target_level {
                    let canonical = s.with_complement(false);
                    if seen.insert(canonical) {
                        this_level.push(canonical);
                        break;
                    }
                }
            }
        }
        if this_level.is_empty() {
            // Force one gate so the level (and final depth) is realized:
            // ⟨prev b !c⟩ with distinct nodes cannot fold, and if it
            // strashes to an earlier gate that gate already has the
            // right level only when it used `prev`; retry fresh pairs
            // until the level lands (bounded by the fan-in variety).
            let prev = levels[l][rng.gen_range(0..levels[l].len())];
            loop {
                let b = all_below[rng.gen_range(0..all_below.len())].complement_if(rng.gen());
                let c = all_below[rng.gen_range(0..all_below.len())].complement_if(rng.gen());
                let s = g.add_maj(prev, b, c);
                if level_of(&g, &mut node_levels, s) == target_level {
                    this_level.push(s.with_complement(false));
                    break;
                }
            }
        }
        all_below.extend(this_level.iter().copied());
        levels.push(this_level);
    }

    // Outputs: the first one pins the deepest level; the rest sample the
    // top few levels so output depths vary (realistic, and exercises the
    // buffer-insertion output-padding step).
    let deepest = *levels[depth]
        .last()
        .expect("deepest level is non-empty by construction");
    g.add_output("po0", deepest.complement_if(rng.gen()));
    for i in 1..config.outputs {
        let l = rng.gen_range((depth / 2).max(1)..=depth);
        let s = levels[l][rng.gen_range(0..levels[l].len())];
        g.add_output(format!("po{i}"), s.complement_if(rng.gen()));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_target_is_exact() {
        for depth in [1u32, 3, 8, 20] {
            let g = random_mig(RandomMigConfig {
                inputs: 10,
                outputs: 4,
                gates: 30.max(depth as usize),
                depth,
                seed: 42,
            });
            assert_eq!(g.depth(), depth, "depth {depth}");
        }
    }

    #[test]
    fn size_target_is_close() {
        let cfg = RandomMigConfig {
            inputs: 24,
            outputs: 10,
            gates: 1000,
            depth: 15,
            seed: 1,
        };
        let g = random_mig(cfg);
        let got = g.gate_count();
        assert!(
            (900..=1000).contains(&got),
            "gate count {got} not within 10% of target 1000"
        );
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        let cfg = RandomMigConfig::default();
        let g1 = random_mig(cfg);
        let g2 = random_mig(cfg);
        assert_eq!(g1.gate_count(), g2.gate_count());
        assert_eq!(g1.depth(), g2.depth());
        assert_eq!(crate::io::write_mig(&g1), crate::io::write_mig(&g2));
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = RandomMigConfig::default();
        let g1 = random_mig(cfg);
        cfg.seed += 1;
        let g2 = random_mig(cfg);
        assert_ne!(crate::io::write_mig(&g1), crate::io::write_mig(&g2));
    }

    #[test]
    #[should_panic(expected = "one gate per level")]
    fn too_few_gates_panics() {
        random_mig(RandomMigConfig {
            inputs: 4,
            outputs: 1,
            gates: 3,
            depth: 10,
            seed: 0,
        });
    }
}
