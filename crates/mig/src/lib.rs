//! # mig — Majority-Inverter Graphs
//!
//! A self-contained implementation of the Majority-Inverter Graph (MIG)
//! logic representation of Amarù et al. (DAC'14, TCAD'16): a homogeneous
//! network of 3-input majority nodes with regular/complemented edges.
//! MIGs are the input representation of the DATE'17 wave-pipelining flow
//! implemented in the companion [`wavepipe`] crate.
//!
//! ## Quick tour
//!
//! ```
//! use mig::{check_equivalence, optimize_depth, Mig};
//!
//! # fn main() -> Result<(), mig::CheckError> {
//! // Build a 1-bit full adder — carry is a native majority gate.
//! let mut g = Mig::with_name("fa");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let cin = g.add_input("cin");
//! let (sum, cout) = g.add_full_adder(a, b, cin);
//! g.add_output("sum", sum);
//! g.add_output("cout", cout);
//!
//! assert_eq!(g.gate_count(), 3);
//!
//! // Optimize (a no-op here) and verify equivalence.
//! let (opt, _) = optimize_depth(&g, 4);
//! assert!(check_equivalence(&g, &opt)?.holds());
//! # Ok(())
//! # }
//! ```
//!
//! ## Modules
//!
//! * [`Mig`] / [`Signal`] / [`Node`] — the graph itself, with
//!   constant-folding, axiom-normalizing, structurally-hashing gate
//!   construction and derived operators (AND/OR/XOR/MUX/adders).
//! * [`Simulator`] / [`TruthTable`] / [`check_equivalence`] —
//!   bit-parallel simulation, exhaustive tables and equivalence checks.
//! * [`analysis`] — path/base-distance analysis (the paper's §III
//!   definitions) and fan-out histograms.
//! * [`cone`] — per-output cone content hashing, level-band diffing and
//!   cone extraction (the incremental engine's dirty-region unit).
//! * [`rewrite`] — Ω-axiom rewriting: [`optimize_depth`],
//!   [`optimize_size`].
//! * [`io`] — `.mig` text format, DOT and Verilog export.
//! * [`random_mig`] — seeded random graphs with size/depth targets.
//!
//! [`wavepipe`]: https://docs.rs/wavepipe

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod builder;
pub mod cone;
mod equivalence;
pub mod fnv;
mod graph;
pub mod io;
mod node;
mod random;
pub mod rewrite;
mod signal;
mod simulate;
mod truth_table;

pub use analysis::{
    BaseDistance, ConeAnalysis, FanoutHistogram, GraphStats, PathAnalysis, Support,
};
pub use cone::{extract_cone, Cone, ConePartition, DEFAULT_BAND_WIDTH};
pub use equivalence::{
    check_equivalence, check_equivalence_seeded, check_equivalence_with_policy,
    check_word_functions, check_word_functions_sharded, CheckError, Equivalence, EquivalencePolicy,
    PatternBlock, SweepConfig, WordFunction, DEFAULT_BLOCK_WORDS, DEFAULT_EXHAUSTIVE_INPUTS,
    DEFAULT_RANDOM_ROUNDS, DEFAULT_SEED,
};
pub use graph::{Mig, Output};
pub use io::{parse_mig, to_dot, to_verilog, write_mig, ParseMigError};
pub use node::Node;
pub use random::{random_mig, RandomMigConfig};
pub use rewrite::{optimize_depth, optimize_size, DepthOptOutcome};
pub use signal::{NodeId, Signal};
pub use simulate::{SimPlan, Simulator};
pub use truth_table::TruthTable;
