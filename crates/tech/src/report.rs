//! Serializable benchmark reports and text-table rendering — the glue
//! between the metrics engine and the table/figure regenerators in the
//! bench crate.

use std::fmt::Write as _;

use crate::metrics::Comparison;
use crate::units::Area;

/// One benchmark evaluated on one technology (a Table II row).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub benchmark: String,
    /// The original-vs-pipelined comparison.
    pub comparison: Comparison,
}

impl BenchmarkRow {
    /// Renders the row in the column layout of Table II.
    pub fn to_table_line(&self) -> String {
        let c = &self.comparison;
        format!(
            "{:<12} {:>5} {:>5} {:>8} {:>8} {:>12.2} {:>12.2} {:>10.2} {:>10.2} {:>12.2} {:>12.2} {:>8.2} {:>8.2}",
            self.benchmark,
            c.original.depth,
            c.pipelined.depth,
            c.original.size,
            c.pipelined.size,
            c.original.area.value(),
            c.pipelined.area.value(),
            c.original.power.value(),
            c.pipelined.power.value(),
            c.original.throughput.value(),
            c.pipelined.throughput.value(),
            c.ta_gain(),
            c.tp_gain(),
        )
    }

    /// The Table II column header matching [`Self::to_table_line`].
    pub fn table_header() -> String {
        format!(
            "{:<12} {:>5} {:>5} {:>8} {:>8} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12} {:>8} {:>8}",
            "Benchmark",
            "D.org",
            "D.wp",
            "S.org",
            "S.wp",
            "Area.org",
            "Area.wp",
            "P.org",
            "P.wp",
            "T.org",
            "T.wp",
            "T/A",
            "T/P"
        )
    }
}

/// Geometric mean of a slice (the right average for ratio data like the
/// Fig 9 gains; the paper reports plain averages, the harness prints
/// both).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Renders a simple aligned two-column table (label, value).
pub fn two_column_table(title: &str, rows: &[(String, String)]) -> String {
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max(8);
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    for (label, value) in rows {
        let _ = writeln!(out, "{label:<width$}  {value}");
    }
    out
}

/// Formats an area ratio as the paper does ("×" suffixed).
pub fn format_ratio(numerator: Area, denominator: Area) -> String {
    format!("{:.2}×", numerator / denominator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{compare, evaluate, OperatingMode};
    use crate::technology::Technology;
    use wavepipe::{run_flow, FlowConfig};

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn table_line_renders_all_columns() {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 8,
            outputs: 4,
            gates: 60,
            depth: 6,
            seed: 77,
        });
        let r = run_flow(&g, FlowConfig::default()).unwrap();
        let row = BenchmarkRow {
            benchmark: "RAND".to_owned(),
            comparison: compare(&r, &Technology::swd()),
        };
        let line = row.to_table_line();
        assert!(line.starts_with("RAND"));
        // Header and line agree on column count by construction; sanity
        // check that both are non-trivially long and aligned.
        assert_eq!(BenchmarkRow::table_header().split_whitespace().count(), 13);
        assert!(line.split_whitespace().count() >= 13);
    }

    #[test]
    fn serde_roundtrip() {
        let mut n = wavepipe::Netlist::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.add_maj([a, b, c]);
        n.add_output("f", g);
        let e = evaluate(&n, &Technology::nml(), OperatingMode::Combinational);
        let json = serde_json::to_string(&e).unwrap();
        let back: crate::metrics::Evaluation = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn two_column_rendering() {
        let t = two_column_table(
            "demo",
            &[
                ("alpha".to_owned(), "1".to_owned()),
                ("b".to_owned(), "2".to_owned()),
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("alpha"));
    }
}
