//! Technology description: per-cell constants and per-component relative
//! costs, mirroring Table I of the paper.
//!
//! [`Technology`] is the canonical implementation of the flow's
//! [`CostModel`] trait — [`Technology::cost_table`] precomputes it into
//! the flat [`wavepipe::CostTable`] the pass pipeline threads through
//! its context and `run_grid` fans out over.

use wavepipe::{ComponentKind, CostModel, CostTable};

use crate::units::{Area, Delay, Energy};

/// Relative cost multipliers for one component kind (a row slice of
/// Table I: e.g. for QCA an INV costs 10× the cell area, 7× the cell
/// delay, 10× the cell energy).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RelativeCost {
    /// Area multiplier over the base cell area.
    pub area: f64,
    /// Delay multiplier over the base cell delay.
    pub delay: f64,
    /// Energy multiplier over the base cell energy.
    pub energy: f64,
}

impl RelativeCost {
    /// Uniform multiplier across all three axes.
    pub const fn uniform(factor: f64) -> RelativeCost {
        RelativeCost {
            area: factor,
            delay: factor,
            energy: factor,
        }
    }
}

/// A beyond-CMOS technology model.
///
/// Cell constants and relative INV/MAJ/BUF/FOG costs come straight from
/// Table I; two extra knobs encode modelling assumptions the paper uses
/// but does not tabulate (see DESIGN.md substitutions):
///
/// * [`Technology::phase_weight`] — the duration of one clock phase in
///   units of the cell delay. Reverse-engineering Table II gives 1 for
///   SWD, 2 for NML (both equal their MAJ relative delay) and 10/3 for
///   QCA (the mean of its INV/MAJ/BUF delays).
/// * [`Technology::output_sense_energy`] — per-primary-output readout
///   energy (the power-dominant sense amplifier of the SWD reference
///   \[22\]); zero for technologies without one.
///
/// # Examples
///
/// ```
/// use tech::Technology;
///
/// let swd = Technology::swd();
/// assert_eq!(swd.name, "SWD");
/// assert_eq!(swd.cell_delay.value(), 0.42);
/// ```
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Technology {
    /// Short display name ("SWD", "QCA", "NML").
    pub name: String,
    /// Base cell area.
    pub cell_area: Area,
    /// Base cell delay.
    pub cell_delay: Delay,
    /// Base cell energy.
    pub cell_energy: Energy,
    /// Relative cost of an inverter.
    pub inv: RelativeCost,
    /// Relative cost of a majority gate.
    pub maj: RelativeCost,
    /// Relative cost of a buffer.
    pub buf: RelativeCost,
    /// Relative cost of a fan-out gate.
    pub fog: RelativeCost,
    /// Clock-phase duration in cell delays.
    pub phase_weight: f64,
    /// Per-primary-output readout energy.
    pub output_sense_energy: Energy,
}

impl Technology {
    /// Relative cost of `kind`.
    ///
    /// # Panics
    ///
    /// Panics for non-priced kinds (inputs, constants) — callers filter
    /// with [`ComponentKind::is_priced`] first.
    pub fn cost(&self, kind: ComponentKind) -> RelativeCost {
        match kind {
            ComponentKind::Inv => self.inv,
            ComponentKind::Maj => self.maj,
            ComponentKind::Buf => self.buf,
            ComponentKind::Fog => self.fog,
            other => panic!("{other} components carry no Table I cost"),
        }
    }

    /// Duration of one clock phase.
    pub fn phase_delay(&self) -> Delay {
        self.cell_delay * self.phase_weight
    }

    /// Spin Wave Devices (Table I, top; phase weight = MAJ relative
    /// delay; sense-amplifier energy dominates readout, per \[22\]).
    pub fn swd() -> Technology {
        Technology {
            name: "SWD".to_owned(),
            cell_area: Area(0.002304),
            cell_delay: Delay(0.42),
            cell_energy: Energy(1.44e-8),
            inv: RelativeCost {
                area: 2.0,
                delay: 1.0,
                energy: 1.0,
            },
            maj: RelativeCost {
                area: 5.0,
                delay: 1.0,
                energy: 3.0,
            },
            buf: RelativeCost {
                area: 2.0,
                delay: 1.0,
                energy: 1.0,
            },
            fog: RelativeCost {
                area: 5.0,
                delay: 1.0,
                energy: 3.0,
            },
            phase_weight: 1.0,
            output_sense_energy: Energy(2.0),
        }
    }

    /// Quantum-dot Cellular Automata (Table I, middle; phase weight
    /// 10/3 calibrated to the paper's reported throughputs — the mean of
    /// the INV/MAJ/BUF relative delays; no sense amplifier, but note the
    /// very expensive inverter).
    pub fn qca() -> Technology {
        Technology {
            name: "QCA".to_owned(),
            cell_area: Area(0.0004),
            cell_delay: Delay(0.0012),
            cell_energy: Energy(9.80e-7),
            inv: RelativeCost {
                area: 10.0,
                delay: 7.0,
                energy: 10.0,
            },
            maj: RelativeCost {
                area: 3.0,
                delay: 2.0,
                energy: 3.0,
            },
            buf: RelativeCost::uniform(1.0),
            fog: RelativeCost {
                area: 3.0,
                delay: 2.0,
                energy: 3.0,
            },
            phase_weight: 10.0 / 3.0,
            output_sense_energy: Energy::ZERO,
        }
    }

    /// NanoMagnetic Logic (Table I, bottom; phase weight = MAJ relative
    /// delay; every component costs roughly the same, which is why NML
    /// power grows with wave pipelining where SWD/QCA power shrinks).
    pub fn nml() -> Technology {
        Technology {
            name: "NML".to_owned(),
            cell_area: Area(0.0098),
            cell_delay: Delay(10.0),
            cell_energy: Energy(5.00e-4),
            inv: RelativeCost::uniform(1.0),
            maj: RelativeCost::uniform(2.0),
            buf: RelativeCost::uniform(2.0),
            fog: RelativeCost::uniform(2.0),
            phase_weight: 2.0,
            output_sense_energy: Energy::ZERO,
        }
    }

    /// All three technologies of the paper, in its presentation order.
    pub fn all() -> Vec<Technology> {
        vec![Technology::swd(), Technology::qca(), Technology::nml()]
    }

    /// Precomputes this technology into the flat [`CostTable`] the pass
    /// pipeline and grid driver consume.
    pub fn cost_table(&self) -> CostTable {
        CostTable::from_model(self)
    }

    /// Stable content-hash identity of this technology — the same hash
    /// its [`CostTable`] carries, so a technology edited in any Table I
    /// constant (or renamed) invalidates exactly the engine-cache cells
    /// priced under it and nothing else. Two `Technology` values with
    /// the same absolute pricing share an identity even if their
    /// relative-cost factorizations differ, because the flow only ever
    /// sees the absolute table.
    pub fn content_hash(&self) -> u64 {
        self.cost_table().content_hash()
    }
}

/// The canonical [`CostModel`]: absolute pricing is the Table I base
/// cell constant times the component's relative multiplier.
impl CostModel for Technology {
    fn cost_name(&self) -> &str {
        &self.name
    }

    fn area_of(&self, kind: ComponentKind) -> f64 {
        if kind.is_priced() {
            self.cell_area.value() * self.cost(kind).area
        } else {
            0.0
        }
    }

    fn delay_of(&self, kind: ComponentKind) -> f64 {
        if kind.is_priced() {
            self.cell_delay.value() * self.cost(kind).delay
        } else {
            0.0
        }
    }

    fn energy_of(&self, kind: ComponentKind) -> f64 {
        if kind.is_priced() {
            self.cell_energy.value() * self.cost(kind).energy
        } else {
            0.0
        }
    }

    fn phase_delay(&self) -> f64 {
        self.cell_delay.value() * self.phase_weight
    }

    fn output_sense_energy(&self) -> f64 {
        self.output_sense_energy.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_constants() {
        let swd = Technology::swd();
        assert_eq!(swd.cell_area.value(), 0.002304);
        assert_eq!(swd.maj.area, 5.0);
        assert_eq!(swd.maj.energy, 3.0);

        let qca = Technology::qca();
        assert_eq!(qca.inv.delay, 7.0);
        assert_eq!(qca.inv.area, 10.0);
        assert_eq!(qca.buf.energy, 1.0);

        let nml = Technology::nml();
        assert_eq!(nml.cell_delay.value(), 10.0);
        assert_eq!(nml.maj, RelativeCost::uniform(2.0));
    }

    #[test]
    fn phase_delays_match_table_two_reverse_engineering() {
        // SWD: 0.42 ns; NML: 20 ns; QCA: 4 ps (see DESIGN.md).
        assert!((Technology::swd().phase_delay().value() - 0.42).abs() < 1e-12);
        assert!((Technology::nml().phase_delay().value() - 20.0).abs() < 1e-12);
        assert!((Technology::qca().phase_delay().value() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn cost_lookup() {
        let qca = Technology::qca();
        assert_eq!(qca.cost(ComponentKind::Inv).area, 10.0);
        assert_eq!(qca.cost(ComponentKind::Buf).delay, 1.0);
    }

    #[test]
    #[should_panic(expected = "no Table I cost")]
    fn cost_of_input_panics() {
        Technology::swd().cost(ComponentKind::Input);
    }

    #[test]
    fn all_returns_three() {
        let names: Vec<String> = Technology::all().into_iter().map(|t| t.name).collect();
        assert_eq!(names, ["SWD", "QCA", "NML"]);
    }

    #[test]
    fn cost_model_prices_cell_times_relative() {
        let qca = Technology::qca();
        let table = qca.cost_table();
        assert_eq!(table.name(), "QCA");
        // INV: 10× area, 7× delay, 10× energy over the QCA cell.
        assert_eq!(table.area_of(ComponentKind::Inv), 0.0004 * 10.0);
        assert_eq!(table.delay_of(ComponentKind::Inv), 0.0012 * 7.0);
        assert_eq!(table.energy_of(ComponentKind::Inv), 9.80e-7 * 10.0);
        assert_eq!(table.area_of(ComponentKind::Input), 0.0);
        assert!((CostModel::phase_delay(&table) - 0.004).abs() < 1e-12);

        let swd = Technology::swd().cost_table();
        assert_eq!(swd.output_sense_energy(), 2.0);
    }

    #[test]
    fn content_hash_is_stable_and_tracks_every_constant() {
        let a = Technology::qca();
        assert_eq!(a.content_hash(), Technology::qca().content_hash());
        assert_eq!(a.content_hash(), a.cost_table().content_hash());

        let names: std::collections::HashSet<u64> = Technology::all()
            .iter()
            .map(Technology::content_hash)
            .collect();
        assert_eq!(names.len(), 3, "three distinct identities");

        let mut edited = Technology::qca();
        edited.inv.delay = 8.0;
        assert_ne!(a.content_hash(), edited.content_hash());
        let mut renamed = Technology::qca();
        renamed.name = "QCA2".to_owned();
        assert_ne!(a.content_hash(), renamed.content_hash());
    }

    #[test]
    fn qca_inverter_occupies_three_phases() {
        // 7 cell delays against a 10/3-cell phase → 3 phases; everything
        // else (and every SWD/NML component) fits in one.
        let qca = Technology::qca().cost_table();
        assert_eq!(qca.phase_occupancy(ComponentKind::Inv), 3);
        assert_eq!(qca.phase_occupancy(ComponentKind::Maj), 1);
        for t in [Technology::swd(), Technology::nml()] {
            let table = t.cost_table();
            for kind in [
                ComponentKind::Inv,
                ComponentKind::Maj,
                ComponentKind::Buf,
                ComponentKind::Fog,
            ] {
                assert_eq!(table.phase_occupancy(kind), 1, "{} {kind}", t.name);
            }
        }
    }
}
