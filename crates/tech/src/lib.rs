//! # tech — beyond-CMOS technology models and evaluation metrics
//!
//! The three technologies the DATE'17 wave-pipelining paper targets —
//! Spin Wave Devices, Quantum-dot Cellular Automata and NanoMagnetic
//! Logic — with the cell constants and relative component costs of its
//! Table I, plus the metrics engine that turns a
//! [`wavepipe::FlowResult`] into the area / power / throughput / T-A /
//! T-P numbers of Table II and Fig 9.
//!
//! ```
//! use mig::Mig;
//! use tech::{compare, Technology};
//! use wavepipe::{run_flow, FlowConfig};
//!
//! # fn main() -> Result<(), wavepipe::BalanceError> {
//! let mut g = Mig::new();
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let cin = g.add_input("cin");
//! let (s, c) = g.add_full_adder(a, b, cin);
//! g.add_output("s", s);
//! g.add_output("c", c);
//!
//! let result = run_flow(&g, FlowConfig::default())?;
//! for technology in Technology::all() {
//!     let row = compare(&result, &technology);
//!     // Wave pipelining never loses on raw throughput (it ties only
//!     // when the original depth is already ≤ 3 levels, as here).
//!     assert!(row.pipelined.throughput.value() >= row.original.throughput.value());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metrics;
pub mod report;
mod technology;
pub mod units;

pub use metrics::{
    compare, compare_with_table, evaluate, evaluate_with_table, Comparison, Evaluation,
    OperatingMode,
};
pub use report::{geometric_mean, mean, BenchmarkRow};
pub use technology::{RelativeCost, Technology};
pub use units::{Area, Delay, Energy, Power, Throughput};
// The cost-model layer lives in `wavepipe` so the pass pipeline can
// consume it; `Technology` is its canonical implementation, so the
// types are re-exported here where users expect them.
pub use wavepipe::{CostModel, CostTable, PricedCost, PricedDelta};
