//! Physical-unit newtypes used by the metrics engine.
//!
//! The paper's Table I mixes µm², ns, fJ, µW and MOPS; newtypes keep the
//! arithmetic honest (C-NEWTYPE) while staying `f64` underneath.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        #[derive(serde::Serialize, serde::Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Raw numeric value in the unit named by [`Self::SUFFIX`].
            pub fn value(self) -> f64 {
                self.0
            }

            /// Unit suffix used by `Display`.
            pub const SUFFIX: &'static str = $suffix;
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(p) = f.precision() {
                    write!(f, "{:.*} {}", p, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// Silicon (or magnet) area in µm².
    Area,
    "µm²"
);
unit!(
    /// Delay / latency in nanoseconds.
    Delay,
    "ns"
);
unit!(
    /// Energy per operation in femtojoules.
    Energy,
    "fJ"
);
unit!(
    /// Power in microwatts.
    Power,
    "µW"
);
unit!(
    /// Throughput in mega-operations per second.
    Throughput,
    "MOPS"
);

impl Energy {
    /// Energy dissipated over `delay`: `P = E / t`.
    ///
    /// 1 fJ / 1 ns = 1 µW, so the units line up exactly.
    pub fn over(self, delay: Delay) -> Power {
        Power(self.0 / delay.0)
    }
}

impl Delay {
    /// Operations per second for one operation per `self`:
    /// 1/ns = 1000 MOPS.
    pub fn to_throughput(self) -> Throughput {
        Throughput(1000.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Area(2.0) + Area(3.0);
        assert_eq!(a, Area(5.0));
        assert_eq!((a * 2.0).value(), 10.0);
        assert_eq!(Area(10.0) / Area(4.0), 2.5);
        let mut d = Delay(1.0);
        d += Delay(0.5);
        assert_eq!(d.value(), 1.5);
    }

    #[test]
    fn energy_over_delay_is_power() {
        // 356.4 fJ over 2.52 ns ≈ 141.43 µW (the paper's SASC/SWD row).
        let p = Energy(356.4).over(Delay(2.52));
        assert!((p.value() - 141.43).abs() < 0.01);
    }

    #[test]
    fn delay_to_throughput() {
        // 2.52 ns latency → 396.83 MOPS (SASC/SWD original throughput).
        let t = Delay(2.52).to_throughput();
        assert!((t.value() - 396.83).abs() < 0.01);
        // 1.26 ns wave interval → 793.65 MOPS (SWD wave-pipelined).
        let t = Delay(1.26).to_throughput();
        assert!((t.value() - 793.65).abs() < 0.01);
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(format!("{:.2}", Area(16.049)), "16.05 µm²");
        assert_eq!(format!("{}", Throughput(5.0)), "5 MOPS");
        assert_eq!(Power::SUFFIX, "µW");
    }
}
