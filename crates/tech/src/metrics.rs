//! The paper's evaluation metrics (§V, Table II, Fig 9).
//!
//! * **Area** — Σ relative area × cell area over MAJ/INV/BUF/FOG.
//! * **Energy** — Σ relative energy × cell energy, plus the
//!   per-output sense energy where the technology has one (SWD).
//! * **Latency** — depth × phase delay.
//! * **Throughput** — non-pipelined: one operation per latency;
//!   wave-pipelined: one wave every *three phases* (Fig 4), independent
//!   of depth.
//! * **Power** — per-operation energy over latency (the paper's
//!   convention; this is what makes the SWD/QCA wave-pipelined power
//!   *decrease* — an artifact the paper explicitly discusses).
//! * **T/A, T/P gains** — wave-pipelined ratio over original ratio,
//!   the two bar charts of Fig 9.

use wavepipe::{CostTable, FlowResult, Netlist};

use crate::technology::Technology;
use crate::units::{Area, Delay, Energy, Power, Throughput};

/// How the netlist is operated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OperatingMode {
    /// One operation at a time; the next starts after the previous
    /// drains (the paper's "Original" columns).
    Combinational,
    /// Wave-pipelined under the three-phase clock: a new wave every
    /// three phases, `⌈d/3⌉` waves in flight (the paper's "WP" columns).
    WavePipelined,
}

/// All Table II metrics for one netlist in one mode on one technology.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Evaluation {
    /// Netlist size (priced components).
    pub size: usize,
    /// Pipeline depth in levels.
    pub depth: u32,
    /// Total area.
    pub area: Area,
    /// Per-operation energy.
    pub energy: Energy,
    /// End-to-end latency of one operation.
    pub latency: Delay,
    /// Power = energy / latency.
    pub power: Power,
    /// Operation throughput.
    pub throughput: Throughput,
}

impl Evaluation {
    /// Throughput per unit area (MOPS/µm²).
    pub fn throughput_per_area(&self) -> f64 {
        self.throughput.value() / self.area.value()
    }

    /// Throughput per unit power (MOPS/µW).
    pub fn throughput_per_power(&self) -> f64 {
        self.throughput.value() / self.power.value()
    }
}

/// Evaluates `netlist` on `technology` in the given mode.
///
/// # Examples
///
/// ```
/// use tech::{evaluate, OperatingMode, Technology};
/// use wavepipe::Netlist;
///
/// let mut n = Netlist::new("maj");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let c = n.add_input("c");
/// let g = n.add_maj([a, b, c]);
/// n.add_output("f", g);
///
/// let e = evaluate(&n, &Technology::nml(), OperatingMode::Combinational);
/// assert_eq!(e.size, 1);
/// assert_eq!(e.latency.value(), 20.0); // depth 1 × 20 ns phase
/// ```
pub fn evaluate(netlist: &Netlist, technology: &Technology, mode: OperatingMode) -> Evaluation {
    evaluate_with_table(netlist, &technology.cost_table(), mode)
}

/// [`evaluate`] against a precomputed [`CostTable`] — the same pricing
/// the pass pipeline records in its per-pass traces, so grid-driver
/// results and post-hoc evaluations are bit-identical (the golden
/// property `tests/grid_pricing.rs` pins). Callers evaluating many
/// netlists on one technology should precompute the table once.
pub fn evaluate_with_table(
    netlist: &Netlist,
    table: &CostTable,
    mode: OperatingMode,
) -> Evaluation {
    let counts = netlist.counts();
    let depth = netlist.depth();
    let priced = table.price(&counts, netlist.outputs().len(), depth);
    let area = Area(priced.area);
    let energy = Energy(priced.energy);
    let latency = Delay(priced.latency);
    let phase = Delay(wavepipe::CostModel::phase_delay(table));
    let throughput = match mode {
        OperatingMode::Combinational => latency.to_throughput(),
        OperatingMode::WavePipelined => (phase * 3.0).to_throughput(),
    };
    // Depth-0 netlists (constant outputs only) have no meaningful
    // latency; report zero power rather than dividing by zero.
    let power = if latency.value() > 0.0 {
        energy.over(latency)
    } else {
        Power::ZERO
    };

    Evaluation {
        size: counts.priced_total(),
        depth,
        area,
        energy,
        latency,
        power,
        throughput,
    }
}

/// Original-vs-wave-pipelined comparison for one benchmark on one
/// technology — one row of Table II.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Comparison {
    /// Technology name.
    pub technology: String,
    /// The original (unbalanced) netlist, operated combinationally.
    pub original: Evaluation,
    /// The wave-pipelined netlist, streaming.
    pub pipelined: Evaluation,
}

impl Comparison {
    /// Normalized throughput-per-area gain (the left chart of Fig 9).
    pub fn ta_gain(&self) -> f64 {
        self.pipelined.throughput_per_area() / self.original.throughput_per_area()
    }

    /// Normalized throughput-per-power gain (the right chart of Fig 9).
    pub fn tp_gain(&self) -> f64 {
        self.pipelined.throughput_per_power() / self.original.throughput_per_power()
    }

    /// Waves simultaneously in flight in the pipelined design
    /// (`N = ⌈d/3⌉`, paper §V).
    pub fn waves_in_flight(&self) -> u32 {
        self.pipelined.depth.div_ceil(3)
    }
}

/// Evaluates a completed flow result on one technology.
pub fn compare(result: &FlowResult, technology: &Technology) -> Comparison {
    compare_with_table(result, &technology.cost_table())
}

/// [`compare`] against a precomputed [`CostTable`] — use this when
/// comparing many flow results on the same technology (the grid harness
/// computes each technology's table once for the whole sweep).
pub fn compare_with_table(result: &FlowResult, table: &CostTable) -> Comparison {
    Comparison {
        technology: table.name().to_owned(),
        original: evaluate_with_table(&result.original, table, OperatingMode::Combinational),
        pipelined: evaluate_with_table(&result.pipelined, table, OperatingMode::WavePipelined),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe::{run_flow, FlowConfig};

    fn flow_sample(seed: u64) -> wavepipe::FlowResult {
        let g = mig::random_mig(mig::RandomMigConfig {
            inputs: 12,
            outputs: 6,
            gates: 300,
            depth: 12,
            seed,
        });
        run_flow(&g, FlowConfig::default()).unwrap()
    }

    #[test]
    fn wave_pipelined_throughput_is_depth_independent() {
        let t = Technology::swd();
        let r = flow_sample(1);
        let e = evaluate(&r.pipelined, &t, OperatingMode::WavePipelined);
        // 1 / (3 × 0.42 ns) = 793.65 MOPS — the constant WP column of
        // Table II for SWD.
        assert!((e.throughput.value() - 793.65).abs() < 0.01);
    }

    #[test]
    fn combinational_throughput_scales_with_depth() {
        let t = Technology::swd();
        let r = flow_sample(2);
        let e = evaluate(&r.original, &t, OperatingMode::Combinational);
        let expect = 1000.0 / (0.42 * e.depth as f64);
        assert!((e.throughput.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn qca_and_nml_wp_throughputs_match_table_two() {
        let r = flow_sample(3);
        let qca = evaluate(
            &r.pipelined,
            &Technology::qca(),
            OperatingMode::WavePipelined,
        );
        assert!((qca.throughput.value() - 83333.33).abs() < 0.01);
        let nml = evaluate(
            &r.pipelined,
            &Technology::nml(),
            OperatingMode::WavePipelined,
        );
        assert!((nml.throughput.value() - 16.67).abs() < 0.01);
    }

    #[test]
    fn swd_energy_is_output_dominated_so_wp_power_drops() {
        // The SWD sense-amplifier assumption makes per-op energy nearly
        // invariant under buffering, so power ∝ 1/latency decreases —
        // the paper's §V artifact.
        let t = Technology::swd();
        let r = flow_sample(4);
        let c = compare(&r, &t);
        assert!(
            c.pipelined.power.value() < c.original.power.value(),
            "WP power {} should drop below original {}",
            c.pipelined.power,
            c.original.power
        );
        let energy_ratio = c.pipelined.energy.value() / c.original.energy.value();
        assert!(
            energy_ratio < 1.05,
            "energy nearly invariant, got ×{energy_ratio}"
        );
    }

    #[test]
    fn nml_power_increases_with_wave_pipelining() {
        // NML prices every cell the same, so energy scales with the
        // 3–5× size increase and dominates the latency growth.
        let t = Technology::nml();
        let r = flow_sample(5);
        let c = compare(&r, &t);
        assert!(
            c.pipelined.power.value() > c.original.power.value(),
            "NML WP power should increase"
        );
    }

    #[test]
    fn gains_match_the_analytic_form() {
        // T/A gain = (d_orig / 3) × (A_orig / A_wp); same for T/P with
        // power. Check the identity holds exactly.
        let t = Technology::qca();
        let r = flow_sample(6);
        let c = compare(&r, &t);
        let analytic =
            (c.original.depth as f64 / 3.0) * (c.original.area.value() / c.pipelined.area.value());
        assert!((c.ta_gain() - analytic).abs() < 1e-9);
        assert!(
            c.ta_gain() > 1.0,
            "QCA T/A gain should exceed 1 on depth-12 logic"
        );
    }

    #[test]
    fn deeper_circuits_gain_more() {
        // Fig 9 / Table II trend: gains grow with original depth.
        let t = Technology::swd();
        let shallow = {
            let g = mig::random_mig(mig::RandomMigConfig {
                inputs: 12,
                outputs: 6,
                gates: 120,
                depth: 6,
                seed: 7,
            });
            compare(&run_flow(&g, FlowConfig::default()).unwrap(), &t)
        };
        let deep = {
            let g = mig::random_mig(mig::RandomMigConfig {
                inputs: 12,
                outputs: 6,
                gates: 600,
                depth: 30,
                seed: 8,
            });
            compare(&run_flow(&g, FlowConfig::default()).unwrap(), &t)
        };
        assert!(deep.tp_gain() > shallow.tp_gain());
    }

    #[test]
    fn waves_in_flight() {
        let r = flow_sample(9);
        let c = compare(&r, &Technology::nml());
        assert_eq!(c.waves_in_flight(), c.pipelined.depth.div_ceil(3));
        assert!(c.waves_in_flight() >= 1);
    }
}
