//! Minimal, dependency-free subset of the `proptest` API. The build
//! environment has no crates registry, so the workspace vendors what its
//! property tests use: range/tuple/`any` strategies, `prop_map` /
//! `prop_flat_map`, `prop::collection::vec`, the `proptest!` macro and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * deterministic seeding per (test name, case index) — no persisted
//!   failure regressions file;
//! * **no shrinking** — a failing case reports its inputs via the plain
//!   `assert!` panic message;
//! * strategies sample directly rather than building value trees.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator for one test case from the test's name and
    /// the case index.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = TestRng {
            state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Test-run configuration (`cases` is all this subset understands).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Generates a value, then generates from the strategy that value
    /// maps to (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, to_strategy: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap {
            inner: self,
            to_strategy,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    to_strategy: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.to_strategy)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing vectors of a fixed length.
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Property assertion: like `assert!`, named for source compatibility.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property assertion: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $config; $($rest)*);
    };
    (@expand $config:expr; $($(#[$meta:meta])* fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $binding = $crate::Strategy::generate(&$strategy, &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 2u32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=5).contains(&y));
        }

        #[test]
        fn flat_map_sees_upstream_value(
            pair in (1usize..5).prop_flat_map(|n| (n..n + 1, 0u64..10))
        ) {
            let (m, _) = pair;
            prop_assert!((1..5).contains(&m));
        }

        #[test]
        fn collections_have_requested_length(v in prop::collection::vec(0usize..6, 3)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|&e| e < 6));
        }

        #[test]
        fn any_bool_mixes(b in any::<bool>(), w in any::<u64>()) {
            // Smoke: values exist; real distribution checks below.
            let _ = (b, w);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut rng = TestRng::for_case("dist", 0);
        let strategy = 0usize..100;
        let values: std::collections::HashSet<usize> = (0..200)
            .map(|_| strategy.clone().generate(&mut rng))
            .collect();
        assert!(values.len() > 40, "poor spread: {}", values.len());
    }
}
