//! Minimal, dependency-free stand-in for `serde`, sufficient for this
//! workspace's needs: derive `Serialize`/`Deserialize` on plain structs
//! (named or tuple fields) and unit-variant enums, then convert to and
//! from JSON text via the sibling `serde_json` stub.
//!
//! Unlike real serde there is no zero-copy visitor machinery — both
//! traits go through the [`Value`] tree, which is plenty for emitting
//! experiment results and round-tripping reports.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the interchange representation both
/// traits target.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds a "expected X" error.
    pub fn expected(what: &str) -> DeError {
        DeError(format!("expected {what}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field in an object's entries (derive-generated code calls
/// this).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let u = value.as_u64().ok_or_else(|| DeError::expected("unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError::expected("in-range unsigned integer"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let i = value.as_i64().ok_or_else(|| DeError::expected("integer"))?;
                <$t>::try_from(i).map_err(|_| DeError::expected("in-range integer"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                value.as_f64().map(|f| f as $t).ok_or_else(|| DeError::expected("number"))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], DeError> {
        let items = value.as_array().ok_or_else(|| DeError::expected("array"))?;
        if items.len() != N {
            return Err(DeError(format!("expected array of length {N}")));
        }
        let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
        parsed.map(|v| match v.try_into() {
            Ok(arr) => arr,
            Err(_) => unreachable!("length checked above"),
        })
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u32::from_value(&42usize.to_value()), Ok(42));
        assert_eq!(f64::from_value(&3.5f64.to_value()), Ok(3.5));
        assert_eq!(f64::from_value(&7u64.to_value()), Ok(7.0));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(Vec::<u32>::from_value(&v), Ok(vec![1, 2, 3]));
        let arr = [1.5f64, 2.5].to_value();
        assert_eq!(<[f64; 2]>::from_value(&arr), Ok([1.5, 2.5]));
        assert!(<[f64; 3]>::from_value(&arr).is_err());
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }
}
