//! JSON text serialization/deserialization over the vendored mini-serde
//! [`serde::Value`] model. API-compatible with the `serde_json` calls
//! this workspace makes: [`to_string`], [`to_string_pretty`],
//! [`from_str`].

use serde::{DeError, Deserialize, Serialize, Value};

/// Error for JSON encoding/decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes mini-serde produces; the `Result`
/// mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to human-indented JSON.
///
/// # Errors
///
/// Never fails for the value shapes mini-serde produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(source: &str) -> Result<T, Error> {
    let value = parse_value(source)?;
    Ok(T::from_value(&value)?)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip formatting; always a valid
                // JSON number (integral floats print without a dot,
                // which round-trips through the numeric Value arms).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            items.len(),
            indent,
            depth,
            out,
            ('[', ']'),
            |item, out, ind, d| {
                write_value(item, ind, d, out);
            },
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            entries.len(),
            indent,
            depth,
            out,
            ('{', '}'),
            |(k, v), out, ind, d| {
                write_string(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(v, ind, d, out);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    (open, close): (char, char),
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(source: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: source.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid unicode escape".into()))?,
                            );
                        }
                        _ => return Err(Error("unknown escape".into())),
                    }
                }
                _ => {
                    // Bulk-consume the run up to the next quote or
                    // escape: both are ASCII bytes, which never occur
                    // inside a multi-byte UTF-8 sequence, so the run
                    // boundary is always a character boundary.
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .ok_or_else(|| Error("unterminated string".into()))?;
                    let text = std::str::from_utf8(&rest[..run])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    s.push_str(text);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected a value at byte {start}")));
        }
        let is_integral = !text.contains(['.', 'e', 'E']);
        if is_integral {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let parsed: Vec<u32> = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 3.0, -2.5e-8, 141.42857142857142, f64::MAX] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\tµm²".to_owned();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_nested_structures() {
        let v: Vec<Vec<u32>> = from_str("[[1, 2], [], [3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
