//! Minimal, dependency-free subset of the `rayon` API, backed by
//! `std::thread::scope`. The build environment has no crates registry,
//! so the workspace vendors the slice it uses: `par_iter()` on slices
//! and `Vec`s, `map`, and `collect` into a `Vec`.
//!
//! This is real parallelism (one chunk per available core), not a
//! sequential fake: `run_flow_batch` and the bench harness rely on it
//! for wall-clock wins on multi-core hosts.

/// Collection types a parallel map can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the in-order results.
    fn from_ordered_results(results: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_results(results: Vec<T>) -> Vec<T> {
        results
    }
}

/// Types that offer a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The item type (a reference).
    type Item: Send + 'a;
    /// The iterator type.
    type Iter;
    /// Creates the parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Clone, Copy, Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `op` (evaluated in parallel at collect
    /// time).
    pub fn map<R, F>(self, op: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            op,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; the terminal `collect` runs the map.
#[derive(Clone, Copy, Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    op: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map across all cores and collects results in input
    /// order. Panics from worker threads propagate.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        C::from_ordered_results(parallel_map(self.items, &self.op))
    }
}

fn parallel_map<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], op: &F) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    parallel_map_with_threads(items, op, threads)
}

/// The scheduler, with an explicit worker count so tests can exercise
/// the multi-threaded path even on single-core machines.
fn parallel_map_with_threads<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(
    items: &'a [T],
    op: &F,
    threads: usize,
) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = items.len();
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(op).collect();
    }

    // Workers pull the next item index from a shared counter rather
    // than taking fixed contiguous chunks: item costs are wildly uneven
    // (the benchsuite spans ~100-gate to ~50k-gate circuits, sorted),
    // and static chunking would serialize all the giants on one thread.
    let next = AtomicUsize::new(0);
    let mut per_thread: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut taken = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            return taken;
                        }
                        taken.push((index, op(&items[index])));
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| match w.join() {
                Ok(taken) => taken,
                // Re-raise the worker's own panic payload.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (index, value) in per_thread.drain(..).flatten() {
        results[index] = Some(value);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index claimed by exactly one worker"))
        .collect()
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_small_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn forced_multi_thread_path_keeps_order() {
        // Force 4 workers regardless of host core count so the
        // work-pulling path is covered even on single-core machines.
        // (Which worker claims which item is scheduler-dependent — on a
        // busy or single-core host one worker may drain everything — so
        // only the ordering contract is asserted here; worker spread is
        // covered by the uneven-cost test below, where sleeps force
        // interleaving.)
        let input: Vec<u32> = (0..257).collect();
        let out = crate::parallel_map_with_threads(&input, &|x| *x * 3, 4);
        assert_eq!(out, input.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_item_costs_do_not_serialize_on_one_worker() {
        // The expensive tail items (like the benchsuite's giant
        // circuits, which sort last) must not all land on one worker.
        let input: Vec<u64> = (0..32).collect();
        let out = crate::parallel_map_with_threads(
            &input,
            &|x| {
                if *x >= 24 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                (*x, std::thread::current().id())
            },
            4,
        );
        let tail_workers: std::collections::HashSet<_> = out
            .iter()
            .filter(|(x, _)| *x >= 24)
            .map(|(_, id)| id)
            .collect();
        assert!(
            tail_workers.len() > 1,
            "expensive tail items all ran on one worker"
        );
    }

    #[test]
    #[should_panic(expected = "worker panic")]
    fn worker_panics_propagate() {
        let input: Vec<u32> = (0..16).collect();
        let _: Vec<u32> = crate::parallel_map_with_threads(
            &input,
            &|x| if *x == 9 { panic!("worker panic") } else { *x },
            4,
        );
    }
}
