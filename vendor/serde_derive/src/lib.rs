//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! mini-serde, implemented directly on `proc_macro::TokenStream` (the
//! build environment has no `syn`/`quote`).
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields
//! * tuple structs (newtypes serialize transparently, like real serde)
//! * enums with only unit variants (serialized as the variant name)
//!
//! Generics, data-carrying enums and `#[serde(...)]` attributes are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the input item turned out to be.
enum Shape {
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the following [...] group.
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional `(crate)` / `(super)` restriction.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                } else {
                    return Err(format!("unexpected token `{s}` before struct/enum"));
                }
            }
            Some(other) => return Err(format!("unexpected token `{other}`")),
            None => return Err("no struct or enum found".into()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".into()),
    };

    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "generic type `{name}` is not supported by mini-serde derive"
        )),
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Shape::Named {
                    name,
                    fields: parse_named_fields(body.stream())?,
                })
            } else {
                Ok(Shape::UnitEnum {
                    name,
                    variants: parse_unit_variants(body.stream())?,
                })
            }
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("parenthesized enum body".into());
            }
            Ok(Shape::Tuple {
                name,
                arity: count_tuple_fields(body.stream()),
            })
        }
        other => Err(format!("unsupported item body after `{name}`: {other:?}")),
    }
}

/// Extracts field names from a named-struct body. Types are irrelevant:
/// the generated code lets inference pick the right impl per field.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in fields: `{other}`")),
                None => return Ok(fields),
            }
        };
        fields.push(field);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("field name not followed by `:`".into()),
        }
        // Consume the type: tokens until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return Ok(fields),
            }
        }
    }
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(_)) => {}
                _ => return Err("malformed variant attribute".into()),
            },
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err("mini-serde derive supports only unit enum variants".into())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("explicit enum discriminants are not supported".into())
            }
            Some(other) => return Err(format!("unexpected token in enum: `{other}`")),
            None => return Ok(variants),
        }
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut arity = 1usize;
    let mut angle_depth = 0i32;
    let mut any = false;
    for token in body {
        any = true;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => {}
        }
    }
    if any {
        arity
    } else {
        0
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("valid error")
}

/// Derives `serde::Serialize` (the mini-serde `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (the mini-serde `from_value` form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(entries, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<{name}, ::serde::DeError> {{\n\
                         let entries = value.as_object()\
                             .ok_or_else(|| ::serde::DeError::expected(\"object for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<{name}, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<{name}, ::serde::DeError> {{\n\
                         let items = value.as_array()\
                             .ok_or_else(|| ::serde::DeError::expected(\"array for {name}\"))?;\n\
                         if items.len() != {arity} {{\n\
                             return Err(::serde::DeError::expected(\"array of length {arity}\"));\n\
                         }}\n\
                         Ok({name}({items}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<{name}, ::serde::DeError> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             _ => Err(::serde::DeError::expected(\"variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl parses")
}
