//! Minimal, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the small slice of `rand` it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is SplitMix64 rather than upstream's ChaCha12: streams
//! differ from real `rand`, but every consumer in this workspace only
//! relies on determinism and statistical quality, never on specific
//! values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T>: Sized {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Not the ChaCha12 generator of upstream `rand`, but statistically
    /// solid and fully deterministic for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // Warm up so that small, similar seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2..=5u32);
            assert!((2..=5).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn bools_are_mixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&trues), "bool bias: {trues}/1000");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..1000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((40..250).contains(&hits), "p=0.1 hits: {hits}/1000");
    }
}
