//! Minimal, dependency-free subset of the `criterion` API: enough to
//! compile and run this workspace's benches (`benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, the two macros) with honest
//! wall-clock timing, median-of-samples reporting, and no statistics
//! beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            _criterion: self,
        }
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (upstream draws plots here; we do nothing).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (also primes caches/allocations).
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{label}: median {median:?} (min {min:?}, max {max:?}, n={})",
            self.samples.len()
        );
    }
}

/// Declares a bench entry point collecting several bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
